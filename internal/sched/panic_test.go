package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunPropagatesBodyPanic is the regression test for the hang: a
// body panicking in a worker used to kill the worker goroutine before
// done.Done(), leaving Run blocked on the barrier forever. Run must
// instead return by re-raising the panic in the caller, with the pool
// left closed-but-safe.
func TestRunPropagatesBodyPanic(t *testing.T) {
	for _, pol := range Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			p := New(WithWorkers(4), WithPolicy(pol), WithChunkSize(1))
			defer p.Close()

			finished := make(chan any, 1)
			go func() {
				defer func() { finished <- recover() }()
				p.RunContext(context.Background(), 1000, func(w, lo, hi int) {
					if lo >= 500 {
						panic("boom")
					}
				})
				finished <- nil
			}()
			select {
			case r := <-finished:
				if r != "boom" {
					t.Fatalf("Run recover = %v, want boom panic", r)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Run hung after body panic")
			}

			// Closed-but-safe: a later Run fails fast with the closed-pool
			// panic instead of computing on half-finished state.
			defer func() {
				if recover() == nil {
					t.Fatal("Run on post-panic pool did not panic")
				}
			}()
			p.RunContext(context.Background(), 10, func(w, lo, hi int) {})
		})
	}
}

func TestRunContextCancelStopsClaiming(t *testing.T) {
	for _, pol := range Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			p := New(WithWorkers(4), WithPolicy(pol), WithChunkSize(1))
			defer p.Close()

			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int64
			err := p.RunContext(ctx, 100000, func(w, lo, hi int) {
				if ran.Add(int64(hi-lo)) > 64 {
					cancel()
				}
				time.Sleep(50 * time.Microsecond)
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext err = %v, want Canceled", err)
			}
			// Cancellation stops the claiming of NEW chunks. Static
			// hands each worker exactly one contiguous block up front,
			// so a worker that entered its block before the abort
			// finishes it — whether any block is skipped is a race
			// against worker startup, so the early-exit assertion
			// only holds for the chunked policies.
			if n := ran.Load(); pol != Static && n >= 100000 {
				t.Fatalf("cancellation did not stop the region (ran %d)", n)
			}

			// The pool stays usable after a cancelled region.
			var total atomic.Int64
			if err := p.RunContext(context.Background(), 1000, func(w, lo, hi int) {
				total.Add(int64(hi - lo))
			}); err != nil {
				t.Fatalf("follow-up RunContext err = %v", err)
			}
			if total.Load() != 1000 {
				t.Fatalf("follow-up region ran %d of 1000", total.Load())
			}
		})
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	p := New(WithWorkers(2))
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.RunContext(ctx, 100, func(w, lo, hi int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if ran {
		t.Fatal("body ran under pre-cancelled context")
	}
}

func TestRunIndexedContext(t *testing.T) {
	p := New(WithWorkers(3), WithPolicy(Dynamic))
	defer p.Close()
	ids := make([]int32, 500)
	for i := range ids {
		ids[i] = int32(i * 2)
	}
	var sum atomic.Int64
	if err := p.RunIndexedContext(context.Background(), ids, func(w int, part []int32) {
		var s int64
		for _, id := range part {
			s += int64(id)
		}
		sum.Add(s)
	}); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, id := range ids {
		want += int64(id)
	}
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestNewOptionsMatchNewPool(t *testing.T) {
	p := New(WithWorkers(3), WithPolicy(Guided), WithChunkSize(7))
	defer p.Close()
	if p.Workers() != 3 || p.Policy() != Guided || p.chunk != 7 {
		t.Fatalf("New options not applied: workers=%d policy=%v chunk=%d",
			p.Workers(), p.Policy(), p.chunk)
	}
}
