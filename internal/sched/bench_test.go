package sched

import (
	"context"
	"sync/atomic"
	"testing"
)

// Scheduling-overhead benchmarks: the cost per parallel region and
// per chunk, which bounds how fine-grained a tile decomposition can
// profitably be.

func benchPolicy(b *testing.B, policy Policy, chunk int) {
	b.Helper()
	p := New(WithWorkers(4), WithPolicy(policy), WithChunkSize(chunk))
	defer p.Close()
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RunContext(context.Background(), 1024, func(w, lo, hi int) {
			sink.Add(int64(hi - lo))
		})
	}
}

func BenchmarkRegionStatic(b *testing.B)  { benchPolicy(b, Static, 1) }
func BenchmarkRegionCyclic(b *testing.B)  { benchPolicy(b, Cyclic, 16) }
func BenchmarkRegionDynamic(b *testing.B) { benchPolicy(b, Dynamic, 16) }
func BenchmarkRegionGuided(b *testing.B)  { benchPolicy(b, Guided, 1) }

func BenchmarkDynamicFineChunks(b *testing.B) { benchPolicy(b, Dynamic, 1) }

// BenchmarkOneShotPool quantifies what reusing a pool saves over
// constructing one per region.
func BenchmarkOneShotPool(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := New(WithWorkers(4), WithPolicy(Static))
		p.RunContext(context.Background(), 1024, func(w, lo, hi int) {
			sink.Add(int64(hi - lo))
		})
		p.Close()
	}
}
