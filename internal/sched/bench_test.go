package sched

import (
	"sync/atomic"
	"testing"
)

// Scheduling-overhead benchmarks: the cost per parallel region and
// per chunk, which bounds how fine-grained a tile decomposition can
// profitably be.

func benchPolicy(b *testing.B, policy Policy, chunk int) {
	b.Helper()
	p := NewPool(Options{Workers: 4, Policy: policy, ChunkSize: chunk})
	defer p.Close()
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(1024, func(w, lo, hi int) {
			sink.Add(int64(hi - lo))
		})
	}
}

func BenchmarkRegionStatic(b *testing.B)  { benchPolicy(b, Static, 1) }
func BenchmarkRegionCyclic(b *testing.B)  { benchPolicy(b, Cyclic, 16) }
func BenchmarkRegionDynamic(b *testing.B) { benchPolicy(b, Dynamic, 16) }
func BenchmarkRegionGuided(b *testing.B)  { benchPolicy(b, Guided, 1) }

func BenchmarkDynamicFineChunks(b *testing.B) { benchPolicy(b, Dynamic, 1) }

// BenchmarkPoolVsForEach quantifies what reusing a pool saves over
// constructing one per region.
func BenchmarkForEachOneShot(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEach(1024, Options{Workers: 4, Policy: Static}, func(w, lo, hi int) {
			sink.Add(int64(hi - lo))
		})
	}
}
