package sched

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Tests for RunIndexed, the worklist-scheduling entry point the lazy
// engines' active-tile frontier runs through.

// runIndexedCoverage executes ids through RunIndexed and returns how
// often each position was visited.
func runIndexedCoverage(t *testing.T, ids []int32, o Options) []int32 {
	t.Helper()
	p := New(WithWorkers(o.Workers), WithPolicy(o.Policy), WithChunkSize(o.ChunkSize))
	defer p.Close()
	counts := make([]int32, len(ids))
	index := map[int32]int{}
	for pos, id := range ids {
		index[id] = pos
	}
	p.RunIndexedContext(context.Background(), ids, func(w int, chunk []int32) {
		for _, id := range chunk {
			atomic.AddInt32(&counts[index[id]], 1)
		}
	})
	return counts
}

func TestRunIndexedCoversEveryIDOnceUnderEveryPolicy(t *testing.T) {
	for _, policy := range Policies {
		for _, n := range []int{1, 7, 64, 1000} {
			ids := make([]int32, n)
			for i := range ids {
				// Sparse, unordered ids: worklists are not permutations
				// of [0, n).
				ids[i] = int32(n - i*3)
			}
			counts := runIndexedCoverage(t, ids, Options{Workers: 3, Policy: policy, ChunkSize: 5})
			for pos, c := range counts {
				if c != 1 {
					t.Fatalf("%v: id at position %d executed %d times, want 1", policy, pos, c)
				}
			}
		}
	}
}

func TestRunIndexedChunksAreSubSlices(t *testing.T) {
	ids := []int32{10, 20, 30, 40, 50, 60, 70}
	p := New(WithWorkers(2), WithPolicy(Dynamic), WithChunkSize(2))
	defer p.Close()
	var total atomic.Int64
	p.RunIndexedContext(context.Background(), ids, func(w int, chunk []int32) {
		if len(chunk) == 0 || len(chunk) > 2 {
			t.Errorf("chunk size %d out of range", len(chunk))
		}
		for _, id := range chunk {
			total.Add(int64(id))
		}
	})
	if total.Load() != 280 {
		t.Fatalf("sum over chunks = %d, want 280", total.Load())
	}
}

func TestRunIndexedEmptyIsNoOp(t *testing.T) {
	p := New(WithWorkers(2))
	defer p.Close()
	ran := false
	p.RunIndexedContext(context.Background(), nil, func(int, []int32) { ran = true })
	p.RunIndexedContext(context.Background(), []int32{}, func(int, []int32) { ran = true })
	if ran {
		t.Fatal("body ran for an empty worklist")
	}
}

func TestRunIndexedInterleavesWithRun(t *testing.T) {
	p := New(WithWorkers(3), WithPolicy(Guided))
	defer p.Close()
	ids := []int32{5, 6, 7, 8}
	for rep := 0; rep < 5; rep++ {
		var a, b atomic.Int64
		p.RunContext(context.Background(), 10, func(w, lo, hi int) { a.Add(int64(hi - lo)) })
		p.RunIndexedContext(context.Background(), ids, func(w int, chunk []int32) { b.Add(int64(len(chunk))) })
		if a.Load() != 10 || b.Load() != 4 {
			t.Fatalf("rep %d: Run covered %d, RunIndexed covered %d", rep, a.Load(), b.Load())
		}
	}
}

// TestRunIndexedZeroAlloc pins the frontier-path contract: after the
// first region (which warms the stealing deques), scheduling a
// worklist allocates nothing under any policy.
func TestRunIndexedZeroAlloc(t *testing.T) {
	ids := make([]int32, 97)
	for i := range ids {
		ids[i] = int32(i * 2)
	}
	for _, policy := range Policies {
		p := New(WithWorkers(4), WithPolicy(policy), WithChunkSize(3))
		var sink atomic.Int64
		body := func(w int, chunk []int32) {
			s := int64(0)
			for _, id := range chunk {
				s += int64(id)
			}
			sink.Add(s)
		}
		p.RunIndexedContext(context.Background(), ids, body) // warm-up: stealing builds its deques once
		allocs := testing.AllocsPerRun(50, func() {
			p.RunIndexedContext(context.Background(), ids, body)
		})
		p.Close()
		if allocs != 0 {
			t.Errorf("%v: RunIndexed allocates %.1f per region, want 0", policy, allocs)
		}
	}
}

func TestRunZeroAllocAfterWarmup(t *testing.T) {
	for _, policy := range Policies {
		p := New(WithWorkers(3), WithPolicy(policy), WithChunkSize(4))
		var sink atomic.Int64
		body := func(w, lo, hi int) { sink.Add(int64(hi - lo)) }
		p.RunContext(context.Background(), 200, body)
		allocs := testing.AllocsPerRun(50, func() {
			p.RunContext(context.Background(), 200, body)
		})
		p.Close()
		if allocs != 0 {
			t.Errorf("%v: Run allocates %.1f per region, want 0", policy, allocs)
		}
	}
}

func TestConcurrentCloseIsSafe(t *testing.T) {
	p := New(WithWorkers(2))
	var ready, done atomic.Int32
	for i := 0; i < 8; i++ {
		go func() {
			ready.Add(1)
			for ready.Load() < 8 {
			}
			p.Close()
			done.Add(1)
		}()
	}
	for done.Load() < 8 {
	}
}

func TestQuickRunIndexedCoverage(t *testing.T) {
	f := func(nRaw uint8, wRaw, cRaw uint8, pRaw uint8) bool {
		n := int(nRaw)%200 + 1
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i * 7)
		}
		o := Options{
			Workers:   int(wRaw)%6 + 1,
			ChunkSize: int(cRaw)%16 + 1,
			Policy:    Policies[int(pRaw)%len(Policies)],
		}
		p := New(WithWorkers(o.Workers), WithPolicy(o.Policy), WithChunkSize(o.ChunkSize))
		defer p.Close()
		counts := make([]int32, n)
		p.RunIndexedContext(context.Background(), ids, func(w int, chunk []int32) {
			for _, id := range chunk {
				atomic.AddInt32(&counts[id/7], 1)
			}
		})
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
