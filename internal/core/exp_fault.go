package core

// exp_fault.go registers E24, the fault-injection & recovery
// demonstration: the same deterministic fault seed is replayed against
// three substrates — simulated MPI ranks (crash + checkpoint
// rollback), the workflow simulator (host failures + retry with
// wasted-energy accounting), and the hybrid CPU+device engine (device
// stall + graceful degradation) — and each is checked against its
// fault-free reference. The table is the repo's smoke proof of the
// acceptance criterion "same seed, same fault schedule, same
// post-recovery result".

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/ghost"
	"repro/internal/hetero"
	"repro/internal/sandpile"
	"repro/internal/wfsched"
	"repro/internal/workflow"
)

func init() {
	Register(Experiment{
		ID: "E24", Artifact: "extension (§II-IV)",
		Title: "Fault injection & recovery: crashes, host failures, and device stalls under one seed",
		Run:   runFaultDemo,
	})
}

func runFaultDemo(cfg Config) (*Result, error) {
	out := &Result{}
	tbl := out.AddTable("Recovery vs fault-free reference (seed-deterministic)",
		"substrate", "faults injected", "recoveries/retries", "matches fault-free", "overhead")

	// --- Ghost ranks: two crashes, checkpoint rollback ---------------
	size := 96
	if cfg.Quick {
		size = 48
	}
	init := sandpile.Center(uint32(size*size)).Build(size, size, rand.New(rand.NewSource(9)))
	ref := init.Clone()
	refRep, err := ghost.New(ref, ghost.WithRanks(4), ghost.WithObs(cfg.Obs)).Run()
	if err != nil {
		return nil, err
	}
	plan := cfg.Faults
	if plan == nil {
		plan = &fault.Plan{Seed: 9, Crashes: []fault.Crash{{Rank: 1, Round: 2}, {Rank: 3, Round: 4}}}
	}
	g := init.Clone()
	rep, err := ghost.New(g,
		ghost.WithRanks(4),
		ghost.WithFaults(plan),
		ghost.WithHeartbeat(300*time.Millisecond),
		ghost.WithObs(cfg.Obs),
	).Run()
	if err != nil {
		return nil, err
	}
	if !g.Equal(ref) {
		return nil, fmt.Errorf("ghost: post-recovery fixed point differs from fault-free run")
	}
	tbl.AddRow("ghost (4 ranks)",
		fmt.Sprintf("%d fault events", len(rep.FaultSchedule)),
		fmt.Sprintf("%d rollbacks", rep.Recoveries),
		"yes",
		fmt.Sprintf("%+d exchanges", rep.Exchanges-refRep.Exchanges))
	for _, line := range rep.FaultSchedule {
		out.Notef("ghost fault: %s", line)
	}

	// --- Workflow hosts: 10%% failure rate, retry + backoff ----------
	sc := wfsched.Tab2Scenario()
	if cfg.Quick {
		sc.Workflow = workflow.Montage(workflow.MontageParams{Projections: 20, TargetBytes: 1e9})
	}
	sc.Obs = cfg.Obs
	refOut := wfsched.Simulate(sc, wfsched.AllCloud)
	fsc := sc
	fsc.Faults = cfg.Faults
	if fsc.Faults == nil {
		fsc.Faults = &fault.Plan{Seed: 9, HostFail: 0.1}
	}
	faultOut := wfsched.Simulate(fsc, wfsched.AllCloud)
	tbl.AddRow("wfsched (cloud)",
		fmt.Sprintf("%.0f%% host-fail", 100*fsc.Faults.HostFail),
		fmt.Sprintf("%d retries", faultOut.Retries),
		"completed",
		fmt.Sprintf("+%.1fs, %.4f kWh wasted", faultOut.Makespan-refOut.Makespan, faultOut.EnergyWastedKWh))

	// --- Hybrid engine: device stall, CPU reclaims ------------------
	hinit := sandpile.Center(20000).Build(64, 64, rand.New(rand.NewSource(9)))
	href := hinit.Clone()
	sandpile.StabilizeAsyncSeq(href)
	hplan := cfg.Faults
	if hplan == nil || hplan.StallIter <= 0 {
		hplan = &fault.Plan{Seed: 9, StallIter: 3}
	}
	hg := hinit.Clone()
	hrep := hetero.New(hg,
		hetero.WithTile(8, 8),
		hetero.WithCPUWorkers(2),
		hetero.WithDevice(2, 0),
		hetero.WithFaults(hplan),
		hetero.WithObs(cfg.Obs),
	).Run()
	if !hg.Equal(href) {
		return nil, fmt.Errorf("hetero: post-stall fixed point differs from reference")
	}
	tbl.AddRow("hetero (CPU+device)",
		fmt.Sprintf("stall @ iter %d", hplan.StallIter),
		fmt.Sprintf("%d degradation", hrep.Recoveries),
		"yes",
		fmt.Sprintf("device share -> %.2f", hrep.FinalFraction))

	out.Notef("replaying the same seed reproduces this table byte-for-byte; see EXPERIMENTS.md")
	return out, nil
}
