package core

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "b"}}
	tbl.AddRow("x|y", 2)
	md := tbl.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestResultMarkdown(t *testing.T) {
	r := &Result{}
	tbl := r.AddTable("title", "h")
	tbl.AddRow("v")
	r.Notef("finding")
	r.AddSVG("chart.svg", "<svg/>")
	md := r.Markdown()
	for _, want := range []string{"**title**", "| h |", "| v |", "> finding", "![chart.svg](chart.svg)"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestExperimentMarkdownHeader(t *testing.T) {
	e := Experiment{ID: "E1", Artifact: "Fig 1a", Title: "t"}
	if got := e.MarkdownHeader(); got != "## E1 (Fig 1a) — t\n" {
		t.Fatalf("header = %q", got)
	}
}
