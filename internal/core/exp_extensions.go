package core

// exp_extensions.go registers experiments beyond the paper's own
// figures: E22 (the sandpile group identity — the classic "cool and
// inspirational" extension of assignment 1) and E23 (relaxing Tab 1's
// homogeneity assumption — the paper calls uniform p-states "the
// simplifying assumption", so the ablation quantifies what it costs).

import (
	"fmt"

	"repro/internal/img"
	"repro/internal/sandpile"
	"repro/internal/wfsched"
	"repro/internal/workflow"
)

func init() {
	Register(Experiment{
		ID: "E22", Artifact: "extension (§II)",
		Title: "Sandpile group identity: the fractal identity element of the Abelian group",
		Run: func(cfg Config) (*Result, error) {
			n := 128
			if cfg.Quick {
				n = 64
			}
			e := sandpile.Identity(n, n)
			if !sandpile.Stable(e) {
				return nil, fmt.Errorf("identity not stable")
			}
			idem := sandpile.StableAdd(e, e).Equal(e)
			neutral := sandpile.IsIdentityFor(e, sandpile.MaxStable(n, n))
			if !idem || !neutral {
				return nil, fmt.Errorf("group laws violated: idempotent=%v neutral=%v", idem, neutral)
			}
			out := &Result{}
			tbl := out.AddTable(fmt.Sprintf("Identity element of the %dx%d sandpile group", n, n),
				"grains", "value-0", "value-1", "value-2", "value-3", "e⊕e=e", "σ⊕e=σ")
			h := e.Histogram(4)
			tbl.AddRow(e.Sum(), h[0], h[1], h[2], h[3], fmt.Sprint(idem), fmt.Sprint(neutral))
			out.AddImage("identity.png", img.Sandpile(e, 4))
			out.Notef("stable configurations form a monoid under add-then-stabilize; on the recurrent class it is a group (Dhar 1990) and this fractal is its identity — a natural 'show it off to friends' extension of the assignment")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E23", Artifact: "extension (§IV)",
		Title: "Relaxing Tab 1's homogeneity assumption: two p-state groups vs uniform",
		Run: func(cfg Config) (*Result, error) {
			base := tab1Base(cfg)
			if cfg.Quick {
				base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 40})
			}
			res, err := wfsched.HeterogeneousAblation(base, wfsched.Tab1MaxNodes, wfsched.Tab1BoundSec)
			if err != nil {
				return nil, err
			}
			out := &Result{}
			tbl := outcomeTable(out, "Homogeneous optimum vs two-group (split p-state) optimum, 180 s bound")
			addOutcomeRow(tbl, "homogeneous: "+res.Homogeneous.String(), res.HomogeneousOutcome)
			addOutcomeRow(tbl, "two-group: "+res.Split.String(), res.SplitOutcome)
			saving := 100 * (1 - res.SplitOutcome.CO2/res.HomogeneousOutcome.CO2)
			out.Notef("allowing two p-state groups saves %.1f%% CO2 over the assignment's homogeneous model — quantifying what the 'simplifying assumption that all powered-on nodes operate in the same p-state' gives away", saving)
			return out, nil
		},
	})
}
