package core

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 25 {
		t.Fatalf("experiments = %d, want 25 (E1-E21 per DESIGN.md plus extensions E22-E25)", len(all))
	}
	for i, e := range all {
		want := i + 1
		if idNum(e.ID) != want {
			t.Fatalf("experiment %d has ID %s", i, e.ID)
		}
		if e.Artifact == "" || e.Title == "" {
			t.Fatalf("%s missing metadata", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("E1")
	if err != nil || e.ID != "E1" {
		t.Fatalf("Lookup(E1) = %v, %v", e, err)
	}
	if _, err := Lookup("E99"); err == nil {
		t.Fatal("unknown experiment found")
	}
}

func TestRegisterGuards(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate register did not panic")
			}
		}()
		Register(Experiment{ID: "E1", Run: func(Config) (*Result, error) { return nil, nil }})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil Run did not panic")
			}
		}()
		Register(Experiment{ID: "E98"})
	}()
}

// TestAllExperimentsRunQuick executes every registered experiment in
// Quick mode — the end-to-end smoke test of the whole reproduction.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long even in Quick mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Artifact, err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			if out := res.Render(); out == "" {
				t.Fatalf("%s rendered empty", e.ID)
			}
		})
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "longer"}}
	tbl.AddRow("xxxxx", 1)
	tbl.AddRow(2.5, "y")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[1], "longer") {
		t.Fatalf("header missing: %q", lines[1])
	}
	if !strings.Contains(out, "2.50") {
		t.Fatalf("float not formatted: %s", out)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{}
	tbl := r.AddTable("title", "h1")
	tbl.AddRow("v1")
	r.Notef("a note %d", 7)
	out := r.Render()
	for _, want := range []string{"title", "h1", "v1", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIDOrdering(t *testing.T) {
	if idNum("E2") > idNum("E10") {
		t.Fatal("numeric ordering broken")
	}
	if idNum("garbage") < 1000 {
		t.Fatal("garbage ID should sort last")
	}
}
