package core

// markdown.go renders experiment results as GitHub-flavored markdown,
// so `peachy -md report.md` regenerates an EXPERIMENTS-style document
// straight from a run.

import (
	"fmt"
	"sort"
	"strings"
)

// Markdown renders one table as a GFM pipe table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return sb.String()
}

// Markdown renders the whole result: tables, notes, artifact links.
func (r *Result) Markdown() string {
	var sb strings.Builder
	for i := range r.Tables {
		sb.WriteString(r.Tables[i].Markdown())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "> %s\n\n", n)
	}
	var artifacts []string
	for n := range r.Images {
		artifacts = append(artifacts, n)
	}
	for n := range r.SVGs {
		artifacts = append(artifacts, n)
	}
	sort.Strings(artifacts)
	for _, a := range artifacts {
		fmt.Fprintf(&sb, "![%s](%s)\n", a, a)
	}
	return sb.String()
}

// MarkdownHeader renders an experiment's section heading.
func (e Experiment) MarkdownHeader() string {
	return fmt.Sprintf("## %s (%s) — %s\n", e.ID, e.Artifact, e.Title)
}
