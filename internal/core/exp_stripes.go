package core

// exp_stripes.go registers experiments E11-E13: the Warming-Stripes
// MapReduce assignment.

import (
	"fmt"
	"math"

	"repro/internal/climate"
	"repro/internal/mapreduce"
	"repro/internal/stripes"
)

func stripesSpan(cfg Config) (int, int) {
	if cfg.Quick {
		return 1990, 2019
	}
	return 1881, 2019 // the paper's Fig 6 span
}

func init() {
	Register(Experiment{
		ID: "E11", Artifact: "Fig 6",
		Title: "Warming stripes for Germany via MapReduce",
		Run: func(cfg Config) (*Result, error) {
			start, end := stripesSpan(cfg)
			d := climate.Generate(climate.Params{Seed: 42, StartYear: start, EndYear: end})
			files := climate.MonthFiles(d)
			s, stats, err := stripes.ComputeSeries(stripes.MonthLayout, files,
				mapreduce.Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4, Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			var lo, hi float64 = math.Inf(1), math.Inf(-1)
			var sum float64
			for _, m := range s.Means {
				lo, hi = math.Min(lo, m), math.Max(hi, m)
				sum += m
			}
			mean := sum / float64(len(s.Means))
			cLo, cHi := stripes.ColorScale(s)
			out := &Result{}
			tbl := out.AddTable(fmt.Sprintf("Annual means %d-%d (MapReduce: %d map inputs, %d groups)",
				start, end, stats.MapInputs, stats.ReduceGroups),
				"coldest", "warmest", "mean", "colorbar-lo", "colorbar-hi")
			tbl.AddRow(lo, hi, mean, cLo, cHi)
			decTbl := out.AddTable("Decadal means (warming trend)", "decade", "mean °C")
			for y := start - start%10; y <= end; y += 10 {
				var ds float64
				n := 0
				for yy := y; yy < y+10 && yy <= end; yy++ {
					if v := s.Year(yy); !math.IsNaN(v) {
						ds += v
						n++
					}
				}
				if n > 0 {
					decTbl.AddRow(fmt.Sprintf("%ds", y), ds/float64(n))
				}
			}
			out.AddImage("fig6_stripes.png", stripes.Render(s, 4, 120))
			out.Notef("colorbar is whole-span mean ± 1.5 °C, per the paper; annual means span ~7-10 °C over 1881-2019")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E12", Artifact: "§III-A3",
		Title: "Validation: an incomplete final year biases its average warm",
		Run: func(cfg Config) (*Result, error) {
			out := &Result{}
			tbl := out.AddTable("Missing final months of 2020 vs reported annual mean",
				"missing-months", "mean-2020 °C", "bias °C", "flagged")
			var full float64
			for _, missing := range []int{0, 1, 2, 3, 4, 6} {
				d := climate.Generate(climate.Params{
					Seed: 9, StartYear: 2000, EndYear: 2020, MissingFinalMonths: missing,
				})
				files := climate.MonthFiles(d)
				s, _, err := stripes.ComputeSeries(stripes.MonthLayout, files, mapreduce.Config[string]{Obs: cfg.Obs})
				if err != nil {
					return nil, err
				}
				v := stripes.Validate(s)
				flagged := "no"
				for _, y := range v.SuspectYears {
					if y == 2020 {
						flagged = "yes"
					}
				}
				mean := s.Year(2020)
				if missing == 0 {
					full = mean
				}
				tbl.AddRow(missing, mean, mean-full, flagged)
			}
			out.Notef("dropping winter months inflates the annual mean by over 1 °C at 3+ missing months — the data-quality lesson of the assignment")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E13", Artifact: "§III-A4",
		Title: "Format invariance: month-file and station-file layouts give identical series",
		Run: func(cfg Config) (*Result, error) {
			start, end := 1950, 1980
			if cfg.Quick {
				start, end = 2000, 2010
			}
			p := climate.Params{Seed: 8, StartYear: start, EndYear: end}
			d := climate.Generate(p)
			a, _, err := stripes.ComputeSeries(stripes.MonthLayout, climate.MonthFiles(d), mapreduce.Config[string]{MapTasks: 4, Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			b, _, err := stripes.ComputeSeries(stripes.StationLayout, climate.StationFiles(d), mapreduce.Config[string]{MapTasks: 7, ReduceTasks: 3, Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			maxDiff := 0.0
			for i := range a.Means {
				maxDiff = math.Max(maxDiff, math.Abs(a.Means[i]-b.Means[i]))
			}
			out := &Result{}
			tbl := out.AddTable("Layout invariance", "years", "max |Δ| between layouts", "identical")
			tbl.AddRow(fmt.Sprintf("%d-%d", start, end), fmt.Sprintf("%.2e", maxDiff), fmt.Sprint(maxDiff == 0))
			if maxDiff != 0 {
				return nil, fmt.Errorf("layouts disagree by %v", maxDiff)
			}
			out.Notef("the normalization pre-processing stage makes the averaging mapper layout-agnostic, the assignment's software-engineering goal")
			return out, nil
		},
	})
}
