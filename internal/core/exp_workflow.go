package core

// exp_workflow.go registers experiments E14-E21: the carbon-footprint
// workflow assignment (Tab 1 and Tab 2 of the EduWRENCH module) and
// Table I.

import (
	"fmt"

	"repro/internal/plot"
	"repro/internal/survey"
	"repro/internal/wfsched"
	"repro/internal/workflow"
)

func tab1Base(cfg Config) wfsched.Scenario {
	base, _ := wfsched.Tab1Base()
	if cfg.Quick {
		base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 40})
	}
	base.Obs = cfg.Obs
	return base
}

func tab2Scenario(cfg Config) wfsched.Scenario {
	sc := wfsched.Tab2Scenario()
	if cfg.Quick {
		sc.Workflow = workflow.Montage(workflow.MontageParams{Projections: 40, TargetBytes: 2e9})
	}
	sc.Obs = cfg.Obs
	return sc
}

func addOutcomeRow(t *Table, name string, o wfsched.Outcome) {
	t.AddRow(name, fmt.Sprintf("%.1f", o.Makespan),
		fmt.Sprintf("%.4f", o.EnergyLocalKWh+o.EnergyCloudKWh),
		fmt.Sprintf("%.2f", o.CO2),
		fmt.Sprintf("%d/%d", o.TasksLocal, o.TasksCloud),
		fmt.Sprintf("%.2f", o.BytesTransferred/1e9))
}

func outcomeTable(r *Result, title string) *Table {
	return r.AddTable(title, "configuration", "time(s)", "energy(kWh)", "gCO2e", "tasks L/C", "xfer(GB)")
}

func init() {
	Register(Experiment{
		ID: "E14", Artifact: "§IV Tab1 Q1",
		Title: "Baseline: all 64 nodes at the highest p-state — time, speedup, efficiency",
		Run: func(cfg Config) (*Result, error) {
			base, ps := wfsched.Tab1Base()
			base = tab1Base(cfg)
			t1 := wfsched.SimulateCluster(base, ps, wfsched.ClusterConfig{Nodes: 1, PState: 6})
			t64 := wfsched.SimulateCluster(base, ps, wfsched.ClusterConfig{Nodes: wfsched.Tab1MaxNodes, PState: 6})
			speedup := t1.Makespan / t64.Makespan
			out := &Result{}
			tbl := out.AddTable("Tab 1 Q1 baseline (Montage, highest p-state)",
				"nodes", "time(s)", "gCO2e", "speedup", "efficiency")
			tbl.AddRow(1, fmt.Sprintf("%.1f", t1.Makespan), fmt.Sprintf("%.2f", t1.CO2), "1.0", "1.00")
			tbl.AddRow(64, fmt.Sprintf("%.1f", t64.Makespan), fmt.Sprintf("%.2f", t64.CO2),
				fmt.Sprintf("%.1f", speedup), fmt.Sprintf("%.2f", speedup/64))
			out.Notef("Montage's serial levels (mConcatFit/mBgModel/mAdd) cap the speedup well below 64 — the efficiency lesson of Q1")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E15", Artifact: "§IV Tab1 Q2",
		Title: "Binary searches: min nodes at top p-state, min p-state at 64 nodes, under 3 minutes",
		Run: func(cfg Config) (*Result, error) {
			base := tab1Base(cfg)
			_, ps := wfsched.Tab1Base()
			bound := wfsched.Tab1BoundSec
			offCfg, offOut, ok1 := wfsched.MinNodesUnderBound(base, ps, len(ps)-1, wfsched.Tab1MaxNodes, bound)
			downCfg, downOut, ok2 := wfsched.MinPStateUnderBound(base, ps, wfsched.Tab1MaxNodes, bound)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("bound infeasible: off=%v down=%v", ok1, ok2)
			}
			out := &Result{}
			tbl := outcomeTable(out, fmt.Sprintf("Tab 1 Q2: two pure options under a %.0f s bound", bound))
			addOutcomeRow(tbl, "power off: "+offCfg.String(), offOut)
			addOutcomeRow(tbl, "downclock: "+downCfg.String(), downOut)
			if offOut.CO2 < downOut.CO2 {
				out.Notef("powering off wins: fewer idling nodes beat slower clocks (idle draw dominates at fixed work)")
			} else {
				out.Notef("downclocking wins on this platform")
			}
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E16", Artifact: "§IV Tab1 Q3",
		Title: "Boss heuristic: combine powering off and downclocking; compare to the optimum",
		Run: func(cfg Config) (*Result, error) {
			base := tab1Base(cfg)
			_, ps := wfsched.Tab1Base()
			bound := wfsched.Tab1BoundSec
			offCfg, offOut, _ := wfsched.MinNodesUnderBound(base, ps, len(ps)-1, wfsched.Tab1MaxNodes, bound)
			downCfg, downOut, _ := wfsched.MinPStateUnderBound(base, ps, wfsched.Tab1MaxNodes, bound)
			bossCfg, bossOut, ok := wfsched.BossHeuristic(base, ps, wfsched.Tab1MaxNodes, bound)
			if !ok {
				return nil, fmt.Errorf("boss heuristic infeasible")
			}
			exCfg, exOut, _ := wfsched.ExhaustiveCluster(base, ps, wfsched.Tab1MaxNodes, bound)
			out := &Result{}
			tbl := outcomeTable(out, "Tab 1 Q3: combined power management")
			addOutcomeRow(tbl, "power off only: "+offCfg.String(), offOut)
			addOutcomeRow(tbl, "downclock only: "+downCfg.String(), downOut)
			addOutcomeRow(tbl, "boss heuristic: "+bossCfg.String(), bossOut)
			addOutcomeRow(tbl, "exhaustive optimum: "+exCfg.String(), exOut)
			if bossOut.CO2 <= offOut.CO2 && bossOut.CO2 <= downOut.CO2 {
				out.Notef("combining both techniques emits less CO2 than either alone — the paper's Q3 result")
			} else {
				return nil, fmt.Errorf("boss heuristic failed to beat the pure options")
			}
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E17", Artifact: "§IV Tab2 Q1",
		Title: "Baselines: all tasks on the local cluster vs all on the green cloud",
		Run: func(cfg Config) (*Result, error) {
			sc := tab2Scenario(cfg)
			al := wfsched.Simulate(sc, wfsched.AllLocal)
			ac := wfsched.Simulate(sc, wfsched.AllCloud)
			out := &Result{}
			tbl := outcomeTable(out, "Tab 2 Q1 baselines (12 local nodes @ p0 + 16 green VMs)")
			addOutcomeRow(tbl, "all local", al)
			addOutcomeRow(tbl, "all cloud", ac)
			out.Notef("the cloud is greener despite moving the inputs; the idle local cluster still burns for the whole makespan either way")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E18", Artifact: "§IV Tab2 Q2",
		Title: "Three options for the first two workflow levels",
		Run: func(cfg Config) (*Result, error) {
			sc := tab2Scenario(cfg)
			depth := len(sc.Workflow.Levels)
			mk := func(l0, l1 float64) []float64 {
				fr := make([]float64, depth)
				fr[0], fr[1] = l0, l1
				return fr
			}
			out := &Result{}
			tbl := outcomeTable(out, "Tab 2 Q2: placements of mProject (L0) and mDiffFit (L1)")
			for _, opt := range []struct {
				name   string
				l0, l1 float64
			}{
				{"both levels local", 0, 0},
				{"L0 cloud, L1 local (backhaul)", 1, 0},
				{"both levels cloud (locality)", 1, 1},
			} {
				res := wfsched.Simulate(sc, wfsched.LevelFractions(sc.Workflow, mk(opt.l0, opt.l1)))
				addOutcomeRow(tbl, opt.name, res)
			}
			out.Notef("co-placing consumer with producer exploits cloud-side storage: the projected images never cross the link twice")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E19", Artifact: "§IV Tab2 Q3-5",
		Title: "Treasure hunt: per-level cloud fractions minimizing CO2 (greedy + sweeps)",
		Run: func(cfg Config) (*Result, error) {
			sc := tab2Scenario(cfg)
			out := &Result{}
			sweep := out.AddTable("Sweep: fraction of mBackground (L4) on the cloud",
				"fraction", "time(s)", "gCO2e")
			for _, r := range wfsched.SweepLevelFraction(sc, 4, []float64{0, 0.25, 0.5, 0.75, 1}) {
				sweep.AddRow(fmt.Sprintf("%.2f", r.Fractions[4]),
					fmt.Sprintf("%.1f", r.Outcome.Makespan), fmt.Sprintf("%.2f", r.Outcome.CO2))
			}
			gr, sims := wfsched.GreedyFractions(sc, wfsched.Tab2Choices(sc.Workflow))
			tbl := outcomeTable(out, fmt.Sprintf("Greedy hill-climb (%d simulations)", sims))
			addOutcomeRow(tbl, fmt.Sprintf("greedy %v", gr.Fractions), gr.Outcome)
			out.Notef("the CO2 landscape has local optima: greedy can stall above the global optimum found by E20")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E20", Artifact: "§IV future work",
		Title: "Exhaustive per-level placement: the actual optimal CO2 emission",
		Run: func(cfg Config) (*Result, error) {
			sc := tab2Scenario(cfg)
			choices := wfsched.Tab2Choices(sc.Workflow)
			if cfg.Quick {
				for l := range choices {
					if len(choices[l]) > 2 {
						choices[l] = []float64{0, 0.5, 1}
					}
				}
			}
			al := wfsched.Simulate(sc, wfsched.AllLocal)
			ac := wfsched.Simulate(sc, wfsched.AllCloud)
			all := wfsched.EvaluateFractions(sc, choices)
			best := all[0]
			for _, r := range all[1:] {
				if r.Outcome.CO2 < best.Outcome.CO2 {
					best = r
				}
			}
			frontier := wfsched.ParetoFrontier(all)
			out := &Result{}
			tbl := outcomeTable(out, fmt.Sprintf("Exhaustive optimum vs baselines (%d placements evaluated)", len(all)))
			addOutcomeRow(tbl, "all local", al)
			addOutcomeRow(tbl, "all cloud", ac)
			addOutcomeRow(tbl, fmt.Sprintf("optimum %v", best.Fractions), best.Outcome)
			fr := out.AddTable(fmt.Sprintf("Time/CO2 Pareto frontier (%d of %d placements)", len(frontier), len(all)),
				"time(s)", "gCO2e", "fractions")
			for _, f := range frontier {
				fr.AddRow(fmt.Sprintf("%.1f", f.Outcome.Makespan),
					fmt.Sprintf("%.2f", f.Outcome.CO2), fmt.Sprint(f.Fractions))
			}
			cloud := plot.Series{Name: "placements", Points: true}
			for _, r := range all {
				cloud.X = append(cloud.X, r.Outcome.Makespan)
				cloud.Y = append(cloud.Y, r.Outcome.CO2)
			}
			front := plot.Series{Name: "Pareto frontier"}
			for _, f := range frontier {
				front.X = append(front.X, f.Outcome.Makespan)
				front.Y = append(front.Y, f.Outcome.CO2)
			}
			chart := plot.Chart{
				Title:  "Every placement: execution time vs CO2",
				XLabel: "time (s)", YLabel: "gCO2e",
				Series: []plot.Series{cloud, front},
			}
			if svg, err := chart.SVG(); err == nil {
				out.AddSVG("pareto.svg", svg)
			}
			if best.Outcome.CO2 > al.CO2 || best.Outcome.CO2 > ac.CO2 {
				return nil, fmt.Errorf("exhaustive optimum worse than a baseline")
			}
			out.Notef("the paper: 'we will run our simulator to exhaustively evaluate all possible options so as to compute the actual optimal CO2 emission' — this experiment is that future work, done")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E21", Artifact: "Table I",
		Title: "Student feedback (archived classroom data, non-computational)",
		Run: func(cfg Config) (*Result, error) {
			s := survey.TableI()
			if err := s.Validate(); err != nil {
				return nil, err
			}
			out := &Result{}
			tbl := out.AddTable(s.Title, "question", "choice", "count")
			for _, q := range s.Items {
				for i, c := range q.Choices {
					tbl.AddRow(q.Text, c, q.Counts[i])
				}
			}
			out.Notef("survey responses are archived verbatim from the paper; no computation to reproduce")
			return out, nil
		},
	})
}
