package core

// exp_shuffle.go registers E25, the sorted-run shuffle demonstration:
// the same million-record word count runs through both shuffle
// implementations — the sorted-run merge pipeline and the retained
// naive hash-group shuffle (mapreduce.Config.ReferenceShuffle) — on a
// uniform and a Zipf-skewed corpus. The outputs are required to be
// identical (the merge's stability guarantee), and the table shows the
// wall-clock difference plus the merge-side accounting (runs fed to
// the merge, merge passes) that the hash-group pipeline doesn't have.

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/mapreduce"
)

func init() {
	Register(Experiment{
		ID: "E25", Artifact: "extension (§II)",
		Title: "Sorted-run merge shuffle vs naive hash-group shuffle on million-record word count",
		Run:   runShuffleDemo,
	})
}

func shuffleCorpus(lines int, skewed bool, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if skewed {
		zipf = rand.NewZipf(rng, 1.3, 1, 50000)
	}
	word := func() string {
		if skewed {
			return fmt.Sprintf("z%d", zipf.Uint64())
		}
		return fmt.Sprintf("w%d", rng.Intn(50000))
	}
	out := make([]string, lines)
	for i := range out {
		out[i] = word() + " " + word() + " " + word()
	}
	return out
}

func runShuffleDemo(cfg Config) (*Result, error) {
	lines := 1_000_000
	if cfg.Quick {
		lines = 100_000
	}
	out := &Result{}
	tbl := out.AddTable(fmt.Sprintf("Word count over %d lines (%d intermediate pairs), 32 map tasks, 8 partitions", lines, 3*lines),
		"corpus", "shuffle", "wall clock", "reduce groups", "sorted runs", "merge passes", "outputs match")

	for _, c := range []struct {
		name   string
		skewed bool
		seed   int64
	}{
		{"uniform (50k keys)", false, 42},
		{"zipf s=1.3 (hot keys)", true, 43},
	} {
		corpus := shuffleCorpus(lines, c.skewed, c.seed)
		var results [2][]mapreduce.KV[string, int]
		var elapsed [2]time.Duration
		var stats [2]mapreduce.Stats
		for i, naive := range []bool{false, true} {
			job := &mapreduce.Job[string, string, int, mapreduce.KV[string, int]]{
				Name: "E25-wordcount",
				Config: mapreduce.Config[string]{
					MapTasks: 32, ReduceTasks: 8,
					ReferenceShuffle: naive, Obs: cfg.Obs,
				},
				Map: func(line string, emit func(string, int)) error {
					for _, w := range strings.Fields(line) {
						emit(w, 1)
					}
					return nil
				},
				Reduce: func(key string, values []int, emit func(mapreduce.KV[string, int])) error {
					sum := 0
					for _, v := range values {
						sum += v
					}
					emit(mapreduce.KV[string, int]{Key: key, Value: sum})
					return nil
				},
			}
			start := time.Now()
			res, st, err := job.Run(corpus)
			if err != nil {
				return nil, err
			}
			elapsed[i] = time.Since(start)
			results[i], stats[i] = res, st
		}

		match := len(results[0]) == len(results[1])
		if match {
			for i := range results[0] {
				if results[0][i] != results[1][i] {
					match = false
					break
				}
			}
		}
		if !match {
			return nil, fmt.Errorf("E25: %s: sorted-run and naive shuffles disagree", c.name)
		}
		tbl.AddRow(c.name, "sorted-run merge", elapsed[0].Round(time.Millisecond),
			stats[0].ReduceGroups, stats[0].ShuffleRuns, stats[0].MergePasses, "yes")
		tbl.AddRow(c.name, "naive hash-group", elapsed[1].Round(time.Millisecond),
			stats[1].ReduceGroups, "-", "-", "yes")
		out.Notef("%s: end-to-end %.2fx vs naive shuffle (map phase is shared; BenchmarkShuffle1M isolates the shuffle itself)",
			c.name, float64(elapsed[1])/float64(elapsed[0]))
	}
	return out, nil
}
