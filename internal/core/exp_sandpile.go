package core

// exp_sandpile.go registers experiments E1-E10: the Abelian-sandpile
// assignment's figures and the studies its four sub-assignments ask
// students to perform.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/ghost"
	"repro/internal/grid"
	"repro/internal/hetero"
	"repro/internal/img"
	"repro/internal/plot"
	"repro/internal/sandpile"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/survey"
	"repro/internal/trace"
)

// fig1Size returns the grid edge for the Fig 1 experiments.
func fig1Size(cfg Config) int {
	if cfg.Quick {
		return 64
	}
	return 128 // the paper's 128x128
}

func runFig1(cfg Config, name string, initial sandpile.Config, grains uint64, pngName string) (*Result, error) {
	n := fig1Size(cfg)
	g := initial.Build(n, n, nil)
	res := sandpile.StabilizeAsyncSeq(g)
	if !sandpile.Stable(g) {
		return nil, fmt.Errorf("%s: grid not stable", name)
	}
	out := &Result{}
	tbl := out.AddTable(fmt.Sprintf("%s: stable configuration on %dx%d", name, n, n),
		"grains", "value-0", "value-1", "value-2", "value-3", "iterations", "absorbed")
	h := g.Histogram(4)
	tbl.AddRow(grains, h[0], h[1], h[2], h[3], res.Iterations, res.Absorbed)
	out.AddImage(pngName, img.Sandpile(g, 4))
	out.Notef("palette: black=0 green=1 blue=2 red=3 grains (paper Fig 1 caption)")
	return out, nil
}

func init() {
	Register(Experiment{
		ID: "E1", Artifact: "Fig 1a",
		Title: "Stable sandpile from 25,000 grains in the center cell",
		Run: func(cfg Config) (*Result, error) {
			grains := uint32(25000)
			if cfg.Quick {
				grains = 6000
			}
			return runFig1(cfg, "Fig 1a", sandpile.Center(grains), uint64(grains), "fig1a_center.png")
		},
	})
	Register(Experiment{
		ID: "E2", Artifact: "Fig 1b",
		Title: "Stable sandpile from 4 grains in every cell",
		Run: func(cfg Config) (*Result, error) {
			n := fig1Size(cfg)
			return runFig1(cfg, "Fig 1b", sandpile.Uniform(4), uint64(4*n*n), "fig1b_uniform.png")
		},
	})
	Register(Experiment{
		ID: "E3", Artifact: "Fig 2",
		Title: "Synchronous and asynchronous kernels reach the same fixed point (Dhar)",
		Run: func(cfg Config) (*Result, error) {
			n := 64
			if cfg.Quick {
				n = 32
			}
			out := &Result{}
			tbl := out.AddTable("Fixed-point agreement across kernels", "config", "sync==async", "sync iters", "async sweeps")
			for _, c := range []sandpile.Config{
				sandpile.Center(10000), sandpile.Uniform(4), sandpile.Random(8),
			} {
				a := c.Build(n, n, rand.New(rand.NewSource(1)))
				b := a.Clone()
				ra := sandpile.StabilizeSyncSeq(a)
				rb := sandpile.StabilizeAsyncSeq(b)
				if !a.Equal(b) {
					return nil, fmt.Errorf("kernels disagree on %s", c.Name)
				}
				tbl.AddRow(c.Name, "yes", ra.Iterations, rb.Iterations)
			}
			out.Notef("asynchronous sweeps converge in far fewer passes: in-place slides propagate within a sweep")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E4", Artifact: "§II-B assignment 1",
		Title: "OpenMP-style scheduling-policy comparison on a sparse configuration",
		Run: func(cfg Config) (*Result, error) {
			// Policy choice only matters when tasks have unequal cost:
			// the lazy variant's tiles are exactly that (active tiles
			// compute, quiescent tiles only copy). The imbalance metric
			// (max/mean busy time - 1 across workers) exposes how each
			// schedule spreads the costly tiles even when the host has
			// few cores.
			n, iter := 1024, 120
			if cfg.Quick {
				n, iter = 512, 60
			}
			out := &Result{}
			tbl := out.AddTable(fmt.Sprintf("lazy-sync over sparse %dx%d, traced iterations %d-%d, 4 workers",
				n, n, iter, iter+10),
				"policy", "time", "tasks", "imbalance")
			for _, policy := range sched.Policies {
				g := sandpile.Sparse(3e-5, 40000).Build(n, n, rand.New(rand.NewSource(7)))
				rec := trace.NewRecorder()
				start := time.Now()
				if _, err := engine.Run("lazy-sync", g, engine.Params{
					TileH: 32, TileW: 32, Workers: 4, Policy: policy, ChunkSize: 1,
					MaxIters: iter + 10, Recorder: rec, TraceFrom: iter, TraceTo: iter + 10,
					Obs: cfg.Obs,
				}); err != nil {
					return nil, err
				}
				dur := time.Since(start)
				var imb []float64
				tasks := 0
				for it := iter; it <= iter+10; it++ {
					st := trace.Iteration(rec.Events(), it)
					imb = append(imb, st.Imbalance)
					tasks += st.Tasks
				}
				tbl.AddRow(policy.String(), dur.Round(time.Millisecond).String(), tasks,
					fmt.Sprintf("%.3f", stats.Summarize(imb).Mean))
			}
			out.Notef("static hands each worker a contiguous tile range, so workers owning quiet regions idle (high imbalance); dynamic/guided spread the costly tiles — the effect assignment 1 asks students to measure")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E5", Artifact: "Fig 3",
		Title: "Lazy-variant trace of one iteration: 32x32 vs 64x64 tiles on a sparse grid",
		Run: func(cfg Config) (*Result, error) {
			n, iter := 2048, 500
			if cfg.Quick {
				n, iter = 512, 100
			}
			out := &Result{}
			var stats [2]trace.IterationStats
			labels := [2]string{"32x32", "64x64"}
			for i, tile := range []int{32, 64} {
				// ~12 tall piles on the whole grid: at iteration 500 each
				// avalanche is a bounded disk, so most tiles are stable —
				// the sparse picture of Fig 3.
				g := sandpile.Sparse(3e-6, 200000).Build(n, n, rand.New(rand.NewSource(9)))
				rec := trace.NewRecorder()
				if _, err := engine.Run("lazy-sync", g, engine.Params{
					TileH: tile, TileW: tile, Workers: 4, Policy: sched.Dynamic,
					MaxIters: iter, Recorder: rec, TraceFrom: iter, TraceTo: iter,
					Obs: cfg.Obs,
				}); err != nil {
					return nil, err
				}
				stats[i] = trace.Iteration(rec.Events(), iter)
			}
			tbl := out.AddTable(fmt.Sprintf("Iteration %d of lazy asandPile over sparse %dx%d", iter, n, n),
				"tiles", "tasks", "active", "cells", "workers", "imbalance")
			for i := range stats {
				tbl.AddRow(labels[i], stats[i].Tasks, stats[i].ActiveTile, stats[i].Cells,
					stats[i].Workers, fmt.Sprintf("%.3f", stats[i].Imbalance))
			}
			out.Notef("smaller tiles track the active zone more precisely (fewer wasted cells), at more scheduling overhead — the paper's Fig 3 comparison")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E6", Artifact: "§II-B assignment 2",
		Title: "Tiling and lazy evaluation: tile-size sweep, lazy vs eager",
		Run: func(cfg Config) (*Result, error) {
			n, reps := 512, 3
			if cfg.Quick {
				n, reps = 256, 1
			}
			out := &Result{}
			tbl := out.AddTable(fmt.Sprintf("Sparse %dx%d to stability, 4 workers, %d repetitions", n, n, reps),
				"variant", "tile", "mean time", "sd", "iterations")
			series := map[string]*plot.Series{
				"tiled-sync": {Name: "eager"},
				"lazy-sync":  {Name: "lazy"},
			}
			for _, tile := range []int{8, 16, 32, 64, 128} {
				for _, variant := range []string{"tiled-sync", "lazy-sync"} {
					var samples []float64
					iterations := 0
					for rep := 0; rep < reps; rep++ {
						g := sandpile.Sparse(0.0002, 3000).Build(n, n, rand.New(rand.NewSource(3)))
						start := time.Now()
						res, err := engine.Run(variant, g, engine.Params{
							TileH: tile, TileW: tile, Workers: 4, Policy: sched.Dynamic,
							Obs: cfg.Obs,
						})
						if err != nil {
							return nil, err
						}
						samples = append(samples, time.Since(start).Seconds()*1000)
						iterations = res.Iterations
					}
					sum := stats.Summarize(samples)
					tbl.AddRow(variant, fmt.Sprintf("%dx%d", tile, tile),
						fmt.Sprintf("%.1fms", sum.Mean), fmt.Sprintf("%.1fms", sum.Stddev), iterations)
					series[variant].X = append(series[variant].X, float64(tile))
					series[variant].Y = append(series[variant].Y, sum.Mean)
				}
			}
			chart := plot.Chart{
				Title: "Lazy vs eager across tile sizes", XLabel: "tile edge (cells)",
				YLabel: "time to stability (ms)",
				Series: []plot.Series{*series["tiled-sync"], *series["lazy-sync"]},
			}
			if svg, err := chart.SVG(); err == nil {
				out.AddSVG("tile_sweep.svg", svg)
			}
			out.Notef("lazy wins on sparse inputs by skipping quiescent neighborhoods; the best tile size balances cache reuse against wasted work at the active frontier")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E7", Artifact: "§II-B assignment 3",
		Title: "Specialized inner-tile kernel vs guarded kernel",
		Run: func(cfg Config) (*Result, error) {
			n := 512
			if cfg.Quick {
				n = 128
			}
			reps := 50
			cur := sandpile.Random(12).Build(n, n, rand.New(rand.NewSource(5)))
			next := grid.New(n, n)
			out := &Result{}
			tbl := out.AddTable(fmt.Sprintf("Full interior pass over %dx%d, %d repetitions", n, n, reps),
				"kernel", "time", "ns/cell")
			cells := float64((n - 2) * (n - 2) * reps)
			start := time.Now()
			for r := 0; r < reps; r++ {
				sandpile.SyncRegion(cur, next, 1, n-1, 1, n-1)
			}
			guarded := time.Since(start)
			start = time.Now()
			for r := 0; r < reps; r++ {
				sandpile.SyncRegionInner(cur, next, 1, n-1, 1, n-1)
			}
			inner := time.Since(start)
			tbl.AddRow("guarded (outer-tile)", guarded.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2f", float64(guarded.Nanoseconds())/cells))
			tbl.AddRow("specialized (inner-tile)", inner.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2f", float64(inner.Nanoseconds())/cells))
			out.Notef("inner tiles admit a branch-free straight-line kernel — the effect the vectorization assignment isolates")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E8", Artifact: "Fig 4",
		Title: "Hybrid CPU+device tile ownership; stable tiles black",
		Run: func(cfg Config) (*Result, error) {
			n := 512
			if cfg.Quick {
				n = 128
			}
			g := grid.New(n, n)
			g.Set(n/4, n/4, uint32(n)*60)
			rec := trace.NewRecorder()
			rep := hetero.New(g,
				hetero.WithTile(16, 16),
				hetero.WithCPUWorkers(3),
				hetero.WithDevice(2, 200*time.Microsecond),
				hetero.WithRecorder(rec),
				hetero.WithObs(cfg.Obs),
			).Run()
			tl := grid.NewTiling(n, n, 16, 16)
			var later []trace.Event
			for _, e := range rec.Events() {
				if e.Iteration > 1 {
					later = append(later, e)
				}
			}
			owners := trace.TileOwners(later)
			out := &Result{}
			tbl := out.AddTable("Hybrid run summary", "tiles", "owned", "stable(black)", "deviceTiles", "cpuTiles", "finalFraction")
			tbl.AddRow(tl.NumTiles(), len(owners), tl.NumTiles()-len(owners),
				rep.DeviceTiles, rep.CPUTiles, fmt.Sprintf("%.3f", rep.FinalFraction))
			out.AddImage("fig4_ownership.png", img.TileOwners(tl, owners))
			out.Notef("the ownership map colors each tile by its last executor (violet = simulated device); black areas are stable tiles the lazy scheduler never touched — the paper's Fig 4 view")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E9", Artifact: "§II-B assignment 4",
		Title: "Ghost Cell Pattern: redundant computation vs communication frequency",
		Run: func(cfg Config) (*Result, error) {
			n := 256
			if cfg.Quick {
				n = 128
			}
			// A 30k-grain center pile keeps the K sweep to seconds
			// while its avalanche still crosses every rank boundary.
			init := sandpile.Center(30000).Build(n, n, nil)
			want := init.Clone()
			sandpile.StabilizeSyncSeq(want)
			out := &Result{}
			tbl := out.AddTable(fmt.Sprintf("4 ranks over %dx%d, center pile", n, n),
				"K", "exchanges", "messages", "bytes", "redundant-cells", "iterations", "correct")
			var msgs, redundant plot.Series
			msgs.Name, redundant.Name = "messages", "redundant cells"
			for _, k := range []int{1, 2, 4, 8, 16} {
				g := init.Clone()
				rep, err := ghost.New(g, ghost.WithRanks(4), ghost.WithWidth(k), ghost.WithObs(cfg.Obs)).Run()
				if err != nil {
					return nil, err
				}
				tbl.AddRow(k, rep.Exchanges, rep.Messages, rep.BytesSent,
					rep.RedundantCells, rep.Iterations, fmt.Sprint(g.Equal(want)))
				msgs.X = append(msgs.X, float64(k))
				msgs.Y = append(msgs.Y, float64(rep.Messages))
				redundant.X = append(redundant.X, float64(k))
				redundant.Y = append(redundant.Y, float64(rep.RedundantCells)+1)
			}
			chart := plot.Chart{
				Title: "Ghost width K: communication vs redundancy", XLabel: "K",
				YLabel: "count (log)", LogY: true,
				Series: []plot.Series{msgs, redundant},
			}
			if svg, err := chart.SVG(); err == nil {
				out.AddSVG("ghost_tradeoff.svg", svg)
			}
			out.Notef("doubling K halves the number of messages and multiplies redundant ghost-band computation — the trade-off the assignment asks students to engineer")
			return out, nil
		},
	})
	Register(Experiment{
		ID: "E10", Artifact: "Fig 5",
		Title: "Student survey (archived classroom data, non-computational)",
		Run: func(cfg Config) (*Result, error) {
			s := survey.Fig5()
			if err := s.Validate(); err != nil {
				return nil, err
			}
			out := &Result{}
			tbl := out.AddTable(s.Title, "question", "choice", "count")
			for _, q := range s.Items {
				for i, c := range q.Choices {
					tbl.AddRow(q.Text, c, q.Counts[i])
				}
			}
			out.Notef("survey responses are archived verbatim from the paper; no computation to reproduce")
			return out, nil
		},
	})
}
