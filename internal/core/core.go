// Package core is the experiment framework of the reproduction: the
// paper's contribution is a curated collection of three assignments,
// and this package curates their computational artifacts the same
// way — every figure and table of the paper is a registered, named
// experiment that can be run, rendered as text tables, and (where the
// artifact is an image) saved as a PNG.
//
// The per-experiment index lives in DESIGN.md; cmd/peachy and the
// root-level benchmarks drive this registry.
package core

import (
	"fmt"
	"image"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Config tunes experiment execution.
type Config struct {
	// Quick shrinks workloads for fast runs (CI, -short tests);
	// headline numbers are produced with Quick=false.
	Quick bool
	// OutDir, when non-empty, receives the PNG artifacts.
	OutDir string
	// Obs attaches the observability layer; experiments thread it into
	// the substrates they drive (sched pools, ghost ranks, mapreduce
	// jobs, ...). The zero Sink disables it.
	Obs obs.Sink
	// Faults overrides the fault plans of fault-aware experiments
	// (E24); nil keeps each demo's built-in deterministic plan.
	Faults *fault.Plan
}

// Table is an aligned text table in a result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv.FormatFloat(v, 'f', 2, 64)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Result is what an experiment produces.
type Result struct {
	Tables []Table
	// Images maps artifact file names (e.g. "fig1a.png") to rendered
	// images; the runner saves them under Config.OutDir.
	Images map[string]image.Image
	// SVGs maps artifact file names (e.g. "tilesweep.svg") to chart
	// markup, the performance-plot artifacts EASYPAP-style reports
	// are built from.
	SVGs map[string]string
	// Notes carry free-form findings ("who wins, by what factor").
	Notes []string
}

// AddTable appends a table and returns a pointer for row appending.
func (r *Result) AddTable(title string, header ...string) *Table {
	r.Tables = append(r.Tables, Table{Title: title, Header: header})
	return &r.Tables[len(r.Tables)-1]
}

// AddImage registers an image artifact.
func (r *Result) AddImage(name string, im image.Image) {
	if r.Images == nil {
		r.Images = map[string]image.Image{}
	}
	r.Images[name] = im
}

// AddSVG registers a chart artifact.
func (r *Result) AddSVG(name, svg string) {
	if r.SVGs == nil {
		r.SVGs = map[string]string{}
	}
	r.SVGs[name] = svg
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the whole result as text.
func (r *Result) Render() string {
	var sb strings.Builder
	for i := range r.Tables {
		sb.WriteString(r.Tables[i].Render())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	if len(r.Images) > 0 {
		names := make([]string, 0, len(r.Images))
		for n := range r.Images {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "images: %s\n", strings.Join(names, ", "))
	}
	if len(r.SVGs) > 0 {
		names := make([]string, 0, len(r.SVGs))
		for n := range r.SVGs {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "charts: %s\n", strings.Join(names, ", "))
	}
	return sb.String()
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	// ID is the index from DESIGN.md, e.g. "E5".
	ID string
	// Artifact names the paper figure/table/section, e.g. "Fig 3".
	Artifact string
	// Title is a one-line description.
	Title string
	Run   func(cfg Config) (*Result, error)
}

var registry = map[string]Experiment{}

// Register adds an experiment; duplicate IDs panic at init.
func Register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %s", e.ID))
	}
	if e.Run == nil {
		panic(fmt.Sprintf("core: experiment %s has no Run", e.ID))
	}
	registry[e.ID] = e
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
	}
	return e, nil
}

// All returns every experiment ordered by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idNum(out[i].ID) < idNum(out[j].ID) })
	return out
}

func idNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "E"))
	if err != nil {
		return 1 << 30
	}
	return n
}
