// Package workflow models scientific workflows as DAGs of tasks with
// file-based data dependencies, and generates the Montage-shaped
// astronomy workflow the carbon-footprint assignment executes: "738
// tasks with a 7.5 GB total data footprint".
package workflow

import (
	"fmt"
	"sort"
)

// File is a data product flowing between tasks.
type File struct {
	Name  string
	Bytes float64
	// Producer is the task that writes the file; nil for workflow
	// inputs staged in before execution.
	Producer *Task
}

// Task is one node of the DAG.
type Task struct {
	ID    string
	Kind  string // e.g. "mProject"
	Level int    // topological level, 0-based
	Gflop float64
	// Inputs and Outputs are the files read and written.
	Inputs, Outputs []*File
	// Parents and Children are the task-level dependencies induced by
	// the files.
	Parents, Children []*Task
}

// Workflow is a whole DAG.
type Workflow struct {
	Name  string
	Tasks []*Task
	Files []*File
	// Levels groups tasks by topological level, the unit the
	// assignment's placement questions reason about ("execute some
	// fraction of a workflow level on the cloud").
	Levels [][]*Task
}

// NumTasks returns the task count.
func (w *Workflow) NumTasks() int { return len(w.Tasks) }

// TotalBytes returns the summed size of all files.
func (w *Workflow) TotalBytes() float64 {
	var total float64
	for _, f := range w.Files {
		total += f.Bytes
	}
	return total
}

// TotalGflop returns the summed compute demand.
func (w *Workflow) TotalGflop() float64 {
	var total float64
	for _, t := range w.Tasks {
		total += t.Gflop
	}
	return total
}

// Width returns the size of the largest level.
func (w *Workflow) Width() int {
	max := 0
	for _, l := range w.Levels {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// CriticalPathGflop returns the heaviest compute path through the
// DAG, a lower bound on execution time at any parallelism.
func (w *Workflow) CriticalPathGflop() float64 {
	memo := make(map[*Task]float64, len(w.Tasks))
	var longest func(t *Task) float64
	longest = func(t *Task) float64 {
		if v, ok := memo[t]; ok {
			return v
		}
		best := 0.0
		for _, p := range t.Parents {
			if v := longest(p); v > best {
				best = v
			}
		}
		memo[t] = best + t.Gflop
		return memo[t]
	}
	best := 0.0
	for _, t := range w.Tasks {
		if v := longest(t); v > best {
			best = v
		}
	}
	return best
}

// Validate checks structural invariants: acyclicity (via levels),
// parent/child symmetry, file producer consistency, and level
// assignment (every task one level below its deepest parent).
func (w *Workflow) Validate() error {
	seen := map[string]bool{}
	for _, t := range w.Tasks {
		if seen[t.ID] {
			return fmt.Errorf("workflow: duplicate task id %q", t.ID)
		}
		seen[t.ID] = true
		for _, p := range t.Parents {
			if p.Level >= t.Level {
				return fmt.Errorf("workflow: task %s at level %d has parent %s at level %d",
					t.ID, t.Level, p.ID, p.Level)
			}
			found := false
			for _, c := range p.Children {
				if c == t {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("workflow: %s -> %s edge not symmetric", p.ID, t.ID)
			}
		}
		for _, f := range t.Outputs {
			if f.Producer != t {
				return fmt.Errorf("workflow: file %s produced by %s but listed as output of %s",
					f.Name, producerName(f), t.ID)
			}
		}
	}
	for li, level := range w.Levels {
		for _, t := range level {
			if t.Level != li {
				return fmt.Errorf("workflow: task %s in Levels[%d] but Level=%d", t.ID, li, t.Level)
			}
		}
	}
	return nil
}

func producerName(f *File) string {
	if f.Producer == nil {
		return "<input>"
	}
	return f.Producer.ID
}

// link records a dependency: child reads file f produced by parent.
func link(parent, child *Task, f *File) {
	child.Inputs = append(child.Inputs, f)
	for _, p := range child.Parents {
		if p == parent {
			return // already linked via another file
		}
	}
	child.Parents = append(child.Parents, parent)
	parent.Children = append(parent.Children, child)
}

// buildLevels populates Levels from the tasks' Level fields.
func (w *Workflow) buildLevels() {
	depth := 0
	for _, t := range w.Tasks {
		if t.Level+1 > depth {
			depth = t.Level + 1
		}
	}
	w.Levels = make([][]*Task, depth)
	for _, t := range w.Tasks {
		w.Levels[t.Level] = append(w.Levels[t.Level], t)
	}
	for _, l := range w.Levels {
		sort.Slice(l, func(i, j int) bool { return l[i].ID < l[j].ID })
	}
}
