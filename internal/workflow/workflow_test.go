package workflow

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMontageDefaultsMatchPaper(t *testing.T) {
	w := Montage(MontageParams{})
	if w.NumTasks() != 738 {
		t.Fatalf("tasks = %d, want the paper's 738", w.NumTasks())
	}
	if got := w.TotalBytes(); math.Abs(got-7.5e9) > 1 {
		t.Fatalf("data footprint = %v bytes, want the paper's 7.5 GB", got)
	}
	if len(w.Levels) != 9 {
		t.Fatalf("levels = %d, want 9 (Montage pipeline stages)", len(w.Levels))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMontageLevelSizes(t *testing.T) {
	w := Montage(MontageParams{})
	want := []int{157, 418, 1, 1, 157, 1, 1, 1, 1}
	for i, n := range want {
		if len(w.Levels[i]) != n {
			t.Fatalf("level %d has %d tasks, want %d", i, len(w.Levels[i]), n)
		}
	}
	if w.Width() != 418 {
		t.Fatalf("width = %d, want 418", w.Width())
	}
}

func TestMontageKindsPerLevel(t *testing.T) {
	w := Montage(MontageParams{})
	wantKinds := []string{
		"mProject", "mDiffFit", "mConcatFit", "mBgModel",
		"mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG",
	}
	for i, kind := range wantKinds {
		for _, task := range w.Levels[i] {
			if task.Kind != kind {
				t.Fatalf("level %d task %s has kind %s, want %s", i, task.ID, task.Kind, kind)
			}
		}
	}
}

func TestMontageDependencyShape(t *testing.T) {
	w := Montage(MontageParams{})
	for _, task := range w.Levels[1] { // mDiffFit
		if len(task.Parents) != 2 {
			t.Fatalf("%s has %d parents, want 2 projections", task.ID, len(task.Parents))
		}
	}
	concat := w.Levels[2][0]
	if len(concat.Parents) != 418 {
		t.Fatalf("mConcatFit has %d parents, want all 418 diffs", len(concat.Parents))
	}
	for _, task := range w.Levels[4] { // mBackground
		if len(task.Parents) != 2 {
			t.Fatalf("%s has %d parents, want projection + bgModel", task.ID, len(task.Parents))
		}
	}
	add := w.Levels[6][0]
	if len(add.Parents) != 158 { // imgtbl + 157 backgrounds
		t.Fatalf("mAdd has %d parents, want 158", len(add.Parents))
	}
}

func TestMontageCriticalPath(t *testing.T) {
	w := Montage(MontageParams{})
	cp := w.CriticalPathGflop()
	// Critical path: mProject + mDiffFit + mConcatFit + mBgModel +
	// mBackground + mImgtbl + mAdd + mShrink + mJPEG.
	want := 90.0 + 12 + 15 + 75 + 45 + 15 + 300 + 60 + 30
	if math.Abs(cp-want) > 1e-6 {
		t.Fatalf("critical path = %v Gflop, want %v", cp, want)
	}
	if cp >= w.TotalGflop() {
		t.Fatal("critical path not shorter than total work")
	}
}

func TestMontageScaling(t *testing.T) {
	w := Montage(MontageParams{Projections: 50, TargetBytes: 1e9, FlopScale: 2})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.TotalBytes()-1e9) > 1 {
		t.Fatalf("scaled footprint = %v, want 1e9", w.TotalBytes())
	}
	base := Montage(MontageParams{Projections: 50})
	if math.Abs(w.TotalGflop()-2*base.TotalGflop()) > 1e-6 {
		t.Fatalf("FlopScale=2 did not double compute: %v vs %v", w.TotalGflop(), base.TotalGflop())
	}
}

func TestMontageDeterministic(t *testing.T) {
	a, b := Montage(MontageParams{}), Montage(MontageParams{})
	if a.NumTasks() != b.NumTasks() || a.TotalGflop() != b.TotalGflop() {
		t.Fatal("generator not deterministic")
	}
	for i := range a.Tasks {
		if a.Tasks[i].ID != b.Tasks[i].ID || len(a.Tasks[i].Parents) != len(b.Tasks[i].Parents) {
			t.Fatalf("task %d differs between generations", i)
		}
	}
}

func TestValidateCatchesBrokenDAGs(t *testing.T) {
	w := Montage(MontageParams{Projections: 5})
	// Break level ordering.
	w.Levels[1][0].Level = 0
	if err := w.Validate(); err == nil {
		t.Fatal("level inversion not caught")
	}
}

func TestValidateCatchesAsymmetricEdge(t *testing.T) {
	w := Montage(MontageParams{Projections: 5})
	child := w.Levels[1][0]
	parent := child.Parents[0]
	// Remove child from parent's children, breaking symmetry.
	for i, c := range parent.Children {
		if c == child {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			break
		}
	}
	if err := w.Validate(); err == nil {
		t.Fatal("asymmetric edge not caught")
	}
}

func TestValidateCatchesDuplicateIDs(t *testing.T) {
	w := Montage(MontageParams{Projections: 5})
	w.Tasks[1].ID = w.Tasks[0].ID
	if err := w.Validate(); err == nil {
		t.Fatal("duplicate id not caught")
	}
}

func TestInputFilesHaveNoProducer(t *testing.T) {
	w := Montage(MontageParams{})
	inputs := 0
	for _, f := range w.Files {
		if f.Producer == nil {
			inputs++
		}
	}
	if inputs != 157 {
		t.Fatalf("workflow inputs = %d, want 157 raw images", inputs)
	}
}

func TestQuickMontageInvariants(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		w := Montage(MontageParams{Projections: n})
		if w.Validate() != nil {
			return false
		}
		// Task count: 2N + diffs + 6.
		diffs := (n * 418) / 157
		if diffs < 1 {
			diffs = 1
		}
		if w.NumTasks() != 2*n+diffs+6 {
			return false
		}
		// Every non-input file has its producer among the tasks.
		for _, file := range w.Files {
			if file.Bytes <= 0 {
				return false
			}
		}
		return w.CriticalPathGflop() <= w.TotalGflop()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
