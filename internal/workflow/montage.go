package workflow

import "fmt"

// MontageParams sizes the generated Montage-shaped workflow.
type MontageParams struct {
	// Projections is the number of input images (mProject tasks).
	// The default 157 yields the paper's 738 total tasks.
	Projections int
	// Diffs is the number of mDiffFit tasks; 0 derives the count so
	// the total matches 738-style proportions (≈2.66 per projection).
	Diffs int
	// TargetBytes scales all file sizes so the workflow's total data
	// footprint matches; default 7.5 GB, the paper's figure.
	TargetBytes float64
	// FlopScale multiplies every task's compute demand; default 1.
	FlopScale float64
}

func (p MontageParams) withDefaults() MontageParams {
	if p.Projections <= 0 {
		p.Projections = 157
	}
	if p.Diffs <= 0 {
		// 738 = N + diffs + N + 6 for N = 157 -> diffs = 418.
		p.Diffs = 738 - 2*157 - 6
		if p.Projections != 157 {
			p.Diffs = (p.Projections * 418) / 157 // keep the ratio
		}
		if p.Diffs < 1 {
			p.Diffs = 1
		}
	}
	if p.TargetBytes <= 0 {
		p.TargetBytes = 7.5e9
	}
	if p.FlopScale <= 0 {
		p.FlopScale = 1
	}
	return p
}

// Per-kind nominal compute demand (Gflop). Calibrated so the default
// workflow on the default 64-node cluster at the highest p-state runs
// in about 1.5 minutes of simulated time, making the assignment's
// 3-minute bound a real constraint.
var montageGflop = map[string]float64{
	"mProject":    90,
	"mDiffFit":    12,
	"mConcatFit":  15,
	"mBgModel":    75,
	"mBackground": 45,
	"mImgtbl":     15,
	"mAdd":        300,
	"mShrink":     60,
	"mJPEG":       30,
}

// Montage generates the nine-level Montage-shaped workflow:
//
//	L0 mProject×N -> L1 mDiffFit×D -> L2 mConcatFit -> L3 mBgModel ->
//	L4 mBackground×N -> L5 mImgtbl -> L6 mAdd -> L7 mShrink -> L8 mJPEG
//
// With defaults it has 738 tasks and a 7.5 GB data footprint, the
// instance the assignment describes.
func Montage(p MontageParams) *Workflow {
	p = p.withDefaults()
	N, D := p.Projections, p.Diffs
	w := &Workflow{Name: fmt.Sprintf("montage-%d", N*2+D+6)}

	newFile := func(name string, mb float64, producer *Task) *File {
		f := &File{Name: name, Bytes: mb * 1e6, Producer: producer}
		w.Files = append(w.Files, f)
		if producer != nil {
			producer.Outputs = append(producer.Outputs, f)
		}
		return f
	}
	newTask := func(kind string, idx, level int) *Task {
		t := &Task{
			ID:    fmt.Sprintf("%s-%d", kind, idx),
			Kind:  kind,
			Level: level,
			Gflop: montageGflop[kind] * p.FlopScale,
		}
		w.Tasks = append(w.Tasks, t)
		return t
	}

	// L0: projections read raw input images.
	projects := make([]*Task, N)
	projected := make([]*File, N)
	for i := 0; i < N; i++ {
		projects[i] = newTask("mProject", i, 0)
		raw := newFile(fmt.Sprintf("raw-%d.fits", i), 12, nil)
		projects[i].Inputs = append(projects[i].Inputs, raw)
		projected[i] = newFile(fmt.Sprintf("proj-%d.fits", i), 14, projects[i])
	}

	// L1: diff-fits read two overlapping projections each.
	diffs := make([]*Task, D)
	fits := make([]*File, D)
	for j := 0; j < D; j++ {
		diffs[j] = newTask("mDiffFit", j, 1)
		a := j % N
		b := (j*7 + 1) % N
		if a == b {
			b = (a + 1) % N
		}
		link(projects[a], diffs[j], projected[a])
		link(projects[b], diffs[j], projected[b])
		fits[j] = newFile(fmt.Sprintf("fit-%d.tbl", j), 0.3, diffs[j])
	}

	// L2..L3: global fit and background model.
	concat := newTask("mConcatFit", 0, 2)
	for j := 0; j < D; j++ {
		link(diffs[j], concat, fits[j])
	}
	concatOut := newFile("concat.tbl", 3, concat)

	bgModel := newTask("mBgModel", 0, 3)
	link(concat, bgModel, concatOut)
	corrections := newFile("corrections.tbl", 1, bgModel)

	// L4: per-image background correction.
	backgrounds := make([]*Task, N)
	corrected := make([]*File, N)
	for i := 0; i < N; i++ {
		backgrounds[i] = newTask("mBackground", i, 4)
		link(projects[i], backgrounds[i], projected[i])
		link(bgModel, backgrounds[i], corrections)
		corrected[i] = newFile(fmt.Sprintf("corr-%d.fits", i), 14, backgrounds[i])
	}

	// L5..L8: table, co-add, shrink, render.
	imgtbl := newTask("mImgtbl", 0, 5)
	for i := 0; i < N; i++ {
		link(backgrounds[i], imgtbl, corrected[i])
	}
	tableOut := newFile("images.tbl", 2, imgtbl)

	add := newTask("mAdd", 0, 6)
	link(imgtbl, add, tableOut)
	for i := 0; i < N; i++ {
		link(backgrounds[i], add, corrected[i])
	}
	mosaic := newFile("mosaic.fits", 700, add)

	shrink := newTask("mShrink", 0, 7)
	link(add, shrink, mosaic)
	shrunk := newFile("shrunk.fits", 70, shrink)

	jpeg := newTask("mJPEG", 0, 8)
	link(shrink, jpeg, shrunk)
	newFile("mosaic.jpg", 7, jpeg)

	// Scale file sizes to the target footprint.
	var total float64
	for _, f := range w.Files {
		total += f.Bytes
	}
	scale := p.TargetBytes / total
	for _, f := range w.Files {
		f.Bytes *= scale
	}

	w.buildLevels()
	return w
}
