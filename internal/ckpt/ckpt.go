// Package ckpt is the durable checkpoint subsystem: versioned binary
// snapshots in CRC-32 framed files, written to a temp file and
// atomically renamed, with a manifest tracking the valid epochs. A
// Store owns one named snapshot family inside a directory; a
// Checkpointer adds the cadence policy ("save every N iterations /
// every D of virtual time") that long-running engines consult inside
// their hot loops.
//
// Durability protocol (the part chaos-tested by cmd/chaos):
//
//  1. the snapshot is written to <name>.<epoch>.ckpt.tmp, fsynced,
//     and renamed over <name>.<epoch>.ckpt;
//  2. the manifest listing valid epochs is rewritten the same way
//     (temp + fsync + rename), so a SIGKILL at any instant leaves
//     either the old manifest (pointing at the previous epoch) or the
//     new one (pointing at a fully-written snapshot) — never a
//     manifest that references a partial file;
//  3. epochs the manifest no longer lists are deleted (keep-last-K
//     garbage collection), and orphan snapshot files from kills
//     between steps 1 and 2 are swept on the next Save.
//
// Load walks the manifest newest-first and falls back to the previous
// epoch when the latest file is truncated or fails its CRC, so a torn
// write costs one checkpoint interval of progress, never the run.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Version is the snapshot frame version written by this package.
const Version uint32 = 1

var magic = [4]byte{'P', 'C', 'K', '1'}

// frame layout: magic[4] | version u32 | epoch u64 | payloadLen u64 |
// payload | crc32(IEEE, everything before) u32 — all little-endian.
const headerLen = 4 + 4 + 8 + 8

// WriteFile atomically writes one framed snapshot: temp file in the
// same directory, fsync, rename, directory fsync. After it returns
// the file is durable; if the process dies mid-call the destination
// is either absent or holds its previous complete content.
func WriteFile(path string, epoch uint64, payload []byte) error {
	buf := make([]byte, 0, headerLen+len(payload)+4)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// ReadFile reads and verifies one framed snapshot, returning its
// epoch and payload. Truncation, a bad magic/version, or a CRC
// mismatch all yield an error — callers treat any error as "this
// epoch is unusable" and fall back.
func ReadFile(path string) (epoch uint64, payload []byte, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(buf) < headerLen+4 {
		return 0, nil, fmt.Errorf("ckpt: %s: truncated frame (%d bytes)", path, len(buf))
	}
	if [4]byte(buf[:4]) != magic {
		return 0, nil, fmt.Errorf("ckpt: %s: bad magic %q", path, buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != Version {
		return 0, nil, fmt.Errorf("ckpt: %s: unsupported version %d", path, v)
	}
	epoch = binary.LittleEndian.Uint64(buf[8:])
	n := binary.LittleEndian.Uint64(buf[16:])
	if uint64(len(buf)) != headerLen+n+4 {
		return 0, nil, fmt.Errorf("ckpt: %s: truncated payload (want %d bytes, have %d)",
			path, headerLen+n+4, len(buf))
	}
	body := buf[:headerLen+n]
	want := binary.LittleEndian.Uint32(buf[headerLen+n:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, nil, fmt.Errorf("ckpt: %s: CRC mismatch (got %08x, want %08x)", path, got, want)
	}
	return epoch, body[headerLen:], nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: syncing %s: %w", dir, err)
	}
	return nil
}

// DefaultKeep is how many epochs a Store retains unless WithKeep
// overrides it.
const DefaultKeep = 2

// Store owns the snapshot family <dir>/<name>.<epoch>.ckpt plus its
// manifest <dir>/<name>.manifest. One Store per logical run state;
// different substrates sharing a -checkpoint directory use distinct
// names. Methods are not concurrency-safe — each substrate saves from
// a single goroutine (its iteration or commit loop).
type Store struct {
	dir   string
	name  string
	keep  int
	sink  obs.Sink
	track obs.TrackID

	saves, saveBytes, loads, fallbacks, gcRemoved *obs.Counter
}

// StoreOption configures Open.
type StoreOption func(*Store)

// WithKeep sets how many recent epochs survive garbage collection
// (minimum 1).
func WithKeep(k int) StoreOption {
	return func(s *Store) {
		if k >= 1 {
			s.keep = k
		}
	}
}

// WithObs attaches metrics counters (ckpt.*) and save/load spans.
func WithObs(sink obs.Sink) StoreOption {
	return func(s *Store) { s.sink = sink }
}

// Open creates dir if needed and returns a Store for the named
// snapshot family.
func Open(dir, name string, opts ...StoreOption) (*Store, error) {
	if name == "" || strings.ContainsAny(name, "/.") {
		return nil, fmt.Errorf("ckpt: invalid store name %q", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s := &Store{dir: dir, name: name, keep: DefaultKeep}
	for _, o := range opts {
		o(s)
	}
	if m := s.sink.Metrics; m != nil {
		s.saves = m.Counter("ckpt.saves")
		s.saveBytes = m.Counter("ckpt.save_bytes")
		s.loads = m.Counter("ckpt.loads")
		s.fallbacks = m.Counter("ckpt.fallbacks")
		s.gcRemoved = m.Counter("ckpt.gc_removed")
	}
	if t := s.sink.Tracer; t != nil {
		s.track = t.Track("ckpt", 1, name)
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) snapshotPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%d.ckpt", s.name, epoch))
}

func (s *Store) manifestPath() string {
	return filepath.Join(s.dir, s.name+".manifest")
}

// Epochs returns the manifest's valid epochs in ascending order (nil
// if no manifest exists yet).
func (s *Store) Epochs() ([]uint64, error) {
	buf, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	lines := strings.Fields(string(buf))
	if len(lines) == 0 || lines[0] != "ckpt-manifest-v1" {
		return nil, fmt.Errorf("ckpt: %s: not a manifest", s.manifestPath())
	}
	epochs := make([]uint64, 0, len(lines)-1)
	for _, l := range lines[1:] {
		e, err := strconv.ParseUint(l, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %s: bad epoch %q", s.manifestPath(), l)
		}
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

func (s *Store) writeManifest(epochs []uint64) error {
	var b strings.Builder
	b.WriteString("ckpt-manifest-v1\n")
	for _, e := range epochs {
		fmt.Fprintf(&b, "%d\n", e)
	}
	path := s.manifestPath()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if f, err := os.OpenFile(tmp, os.O_RDWR, 0); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	return syncDir(s.dir)
}

// Save durably writes one snapshot, commits it to the manifest, and
// garbage-collects epochs beyond the keep budget (plus any orphan
// files a previous kill left behind).
func (s *Store) Save(epoch uint64, payload []byte) error {
	start := s.sink.Tracer.Now()
	span := s.sink.Log.NextSpan()
	if err := WriteFile(s.snapshotPath(epoch), epoch, payload); err != nil {
		s.sink.Log.EventSpan(obs.LevelError, "ckpt", "save failed: "+err.Error(), span,
			obs.Arg{Key: "epoch", Value: int64(epoch)})
		return err
	}
	epochs, err := s.Epochs()
	if err != nil {
		return err
	}
	keep := epochs
	if i := sort.Search(len(keep), func(i int) bool { return keep[i] >= epoch }); i == len(keep) || keep[i] != epoch {
		keep = append(keep, epoch)
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	}
	var drop []uint64
	if len(keep) > s.keep {
		drop = append(drop, keep[:len(keep)-s.keep]...)
		keep = keep[len(keep)-s.keep:]
	}
	if err := s.writeManifest(keep); err != nil {
		return err
	}
	removed := int64(0)
	for _, e := range drop {
		if os.Remove(s.snapshotPath(e)) == nil {
			s.gcRemoved.Inc()
			removed++
		}
	}
	removed += s.sweepOrphans(keep)
	s.saves.Inc()
	s.saveBytes.Add(int64(len(payload)))
	if t := s.sink.Tracer; t != nil {
		t.Span(s.track, "ckpt.save", start, t.Now()-start,
			obs.Arg{Key: "epoch", Value: int64(epoch)},
			obs.Arg{Key: "bytes", Value: int64(len(payload))},
			obs.Arg{Key: "span", Value: span})
	}
	s.sink.Log.EventSpan(obs.LevelInfo, "ckpt", "epoch saved", span,
		obs.Arg{Key: "epoch", Value: int64(epoch)},
		obs.Arg{Key: "bytes", Value: int64(len(payload))})
	if removed > 0 {
		s.sink.Log.EventSpan(obs.LevelDebug, "ckpt", "epochs gc'd", span,
			obs.Arg{Key: "removed", Value: removed},
			obs.Arg{Key: "kept", Value: int64(len(keep))})
	}
	return nil
}

// sweepOrphans removes snapshot files for this store's name that the
// manifest does not list (e.g. a kill landed between the snapshot
// rename and the manifest rename, or after GC dropped the manifest
// entry but before the file unlink).
func (s *Store) sweepOrphans(keep []uint64) int64 {
	matches, err := filepath.Glob(filepath.Join(s.dir, s.name+".*.ckpt"))
	if err != nil {
		return 0
	}
	kept := make(map[uint64]bool, len(keep))
	for _, e := range keep {
		kept[e] = true
	}
	prefix := s.name + "."
	removed := int64(0)
	for _, m := range matches {
		base := filepath.Base(m)
		num := strings.TrimSuffix(strings.TrimPrefix(base, prefix), ".ckpt")
		e, err := strconv.ParseUint(num, 10, 64)
		if err != nil || kept[e] {
			continue
		}
		if os.Remove(m) == nil {
			s.gcRemoved.Inc()
			removed++
		}
	}
	return removed
}

// Load returns the newest snapshot that verifies, walking the
// manifest backwards past truncated/corrupt epochs (each skip counts
// as a ckpt.fallbacks). ok is false when the store holds no manifest
// yet (a fresh run); err is non-nil when a manifest exists but no
// listed epoch is readable.
func (s *Store) Load() (epoch uint64, payload []byte, ok bool, err error) {
	start := s.sink.Tracer.Now()
	span := s.sink.Log.NextSpan()
	epochs, err := s.Epochs()
	if err != nil {
		return 0, nil, false, err
	}
	if len(epochs) == 0 {
		return 0, nil, false, nil
	}
	var lastErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		e := epochs[i]
		fe, payload, err := ReadFile(s.snapshotPath(e))
		if err != nil || fe != e {
			if err == nil {
				err = fmt.Errorf("ckpt: %s: frame epoch %d != manifest epoch %d", s.snapshotPath(e), fe, e)
			}
			lastErr = err
			s.fallbacks.Inc()
			continue
		}
		s.loads.Inc()
		if t := s.sink.Tracer; t != nil {
			t.Span(s.track, "ckpt.load", start, t.Now()-start,
				obs.Arg{Key: "epoch", Value: int64(e)},
				obs.Arg{Key: "bytes", Value: int64(len(payload))},
				obs.Arg{Key: "fallbacks", Value: int64(len(epochs) - 1 - i)},
				obs.Arg{Key: "span", Value: span})
		}
		s.sink.Log.EventSpan(obs.LevelInfo, "ckpt", "epoch loaded", span,
			obs.Arg{Key: "epoch", Value: int64(e)},
			obs.Arg{Key: "bytes", Value: int64(len(payload))},
			obs.Arg{Key: "fallbacks", Value: int64(len(epochs) - 1 - i)})
		return e, payload, true, nil
	}
	return 0, nil, false, fmt.Errorf("ckpt: no readable snapshot among %d epochs: %w", len(epochs), lastErr)
}
