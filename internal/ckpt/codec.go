package ckpt

import (
	"encoding/binary"
	"errors"
	"math"
)

// Enc is a tiny append-based encoder for snapshot payloads. All
// integers are little-endian fixed-width — snapshots trade a few
// bytes for a format trivially auditable with xxd.
type Enc struct{ buf []byte }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a fixed 4-byte unsigned integer.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed 8-byte unsigned integer.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a fixed 8-byte signed integer.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 double, bit-exact.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U32s appends a length-prefixed []uint32.
func (e *Enc) U32s(vs []uint32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(v)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Enc) I32s(vs []int32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(uint32(v))
	}
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// ErrCorrupt is the sticky error a Dec reports once any read runs
// past the payload.
var ErrCorrupt = errors.New("ckpt: payload decode past end")

// Dec is the matching sticky-error decoder: after the first short
// read every subsequent read returns zero values and Err() reports
// ErrCorrupt, so payload decoders check the error once at the end.
type Dec struct {
	buf []byte
	bad bool
}

// NewDec wraps a payload for decoding.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

func (d *Dec) take(n int) []byte {
	if d.bad || len(d.buf) < n {
		d.bad = true
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a fixed 4-byte unsigned integer.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed 8-byte unsigned integer.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed 8-byte signed integer.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 double.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U32())
	if d.bad || n < 0 || n > len(d.buf) {
		d.bad = true
		return ""
	}
	return string(d.take(n))
}

// U32s reads a length-prefixed []uint32.
func (d *Dec) U32s() []uint32 {
	n := int(d.U32())
	if d.bad || n < 0 || n*4 > len(d.buf) {
		d.bad = true
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = d.U32()
	}
	return vs
}

// I32s reads a length-prefixed []int32.
func (d *Dec) I32s() []int32 {
	n := int(d.U32())
	if d.bad || n < 0 || n*4 > len(d.buf) {
		d.bad = true
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.U32())
	}
	return vs
}

// Rest returns whatever remains undecoded.
func (d *Dec) Rest() []byte {
	if d.bad {
		return nil
	}
	return d.buf
}

// Err reports ErrCorrupt if any read ran past the payload end.
func (d *Dec) Err() error {
	if d.bad {
		return ErrCorrupt
	}
	return nil
}
