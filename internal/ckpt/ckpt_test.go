package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	payload := []byte("hello snapshot")
	if err := WriteFile(path, 42, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	epoch, got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if epoch != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: epoch=%d payload=%q", epoch, got)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	if err := WriteFile(path, 1, []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	buf, _ := os.ReadFile(path)

	cases := map[string][]byte{
		"empty":       {},
		"truncHeader": buf[:10],
		"truncBody":   buf[:len(buf)-6],
		"badMagic":    append([]byte("JUNK"), buf[4:]...),
		"flippedByte": func() []byte {
			b := append([]byte(nil), buf...)
			b[headerLen+3] ^= 0xff
			return b
		}(),
		"flippedCRC": func() []byte {
			b := append([]byte(nil), buf...)
			b[len(b)-1] ^= 0xff
			return b
		}(),
	}
	for name, b := range cases {
		p := filepath.Join(dir, name+".ckpt")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadFile(p); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestStoreSaveLoadAndGC(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, "grid", WithKeep(2), WithObs(obs.Sink{Metrics: reg}))
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 5; e++ {
		if err := s.Save(e*10, []byte{byte(e)}); err != nil {
			t.Fatalf("Save(%d): %v", e*10, err)
		}
	}
	epochs, err := s.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 40 || epochs[1] != 50 {
		t.Fatalf("manifest after GC: %v", epochs)
	}
	// GC must actually delete the files, not only drop manifest rows.
	matches, _ := filepath.Glob(filepath.Join(dir, "grid.*.ckpt"))
	if len(matches) != 2 {
		t.Fatalf("files on disk after GC: %v", matches)
	}
	epoch, payload, ok, err := s.Load()
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if epoch != 50 || !bytes.Equal(payload, []byte{5}) {
		t.Fatalf("Load newest: epoch=%d payload=%v", epoch, payload)
	}
	if got := reg.Counter("ckpt.gc_removed").Value(); got != 3 {
		t.Fatalf("ckpt.gc_removed = %d, want 3", got)
	}
	if got := reg.Counter("ckpt.saves").Value(); got != 5 {
		t.Fatalf("ckpt.saves = %d, want 5", got)
	}
}

// The satellite-6 contract: a truncated or corrupt latest snapshot
// must fall back to the previous valid epoch, not fail the resume.
func TestCorruptLatestFallsBack(t *testing.T) {
	for _, mode := range []string{"truncate", "flip", "missing"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			s, err := Open(dir, "run", WithObs(obs.Sink{Metrics: reg}))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Save(7, []byte("epoch seven")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save(9, []byte("epoch nine")); err != nil {
				t.Fatal(err)
			}
			latest := s.snapshotPath(9)
			switch mode {
			case "truncate":
				if err := os.Truncate(latest, 9); err != nil {
					t.Fatal(err)
				}
			case "flip":
				buf, _ := os.ReadFile(latest)
				buf[len(buf)/2] ^= 0xff
				if err := os.WriteFile(latest, buf, 0o644); err != nil {
					t.Fatal(err)
				}
			case "missing":
				if err := os.Remove(latest); err != nil {
					t.Fatal(err)
				}
			}
			epoch, payload, ok, err := s.Load()
			if err != nil || !ok {
				t.Fatalf("Load: ok=%v err=%v", ok, err)
			}
			if epoch != 7 || string(payload) != "epoch seven" {
				t.Fatalf("fallback: epoch=%d payload=%q", epoch, payload)
			}
			if got := reg.Counter("ckpt.fallbacks").Value(); got != 1 {
				t.Fatalf("ckpt.fallbacks = %d, want 1", got)
			}
		})
	}
}

func TestLoadEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir(), "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Load(); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
}

func TestLoadAllCorruptErrors(t *testing.T) {
	s, err := Open(t.TempDir(), "run", WithKeep(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Save(1, []byte("a"))
	s.Save(2, []byte("b"))
	os.Truncate(s.snapshotPath(1), 3)
	os.Truncate(s.snapshotPath(2), 3)
	if _, _, ok, err := s.Load(); ok || err == nil {
		t.Fatalf("all-corrupt store: ok=%v err=%v", ok, err)
	}
}

// A kill between the snapshot rename and the manifest rename leaves
// an orphan file; the next Save must sweep it.
func TestSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	orphan := s.snapshotPath(99)
	if err := WriteFile(orphan, 99, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan not swept: %v", err)
	}
	// The orphan must never influence Load even before the sweep.
	epoch, _, ok, err := s.Load()
	if err != nil || !ok || epoch != 2 {
		t.Fatalf("Load after sweep: epoch=%d ok=%v err=%v", epoch, ok, err)
	}
}

func TestCheckpointerCadence(t *testing.T) {
	s, err := Open(t.TempDir(), "run")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCheckpointer(s, 10, true)
	var fired []int64
	for pos := int64(1); pos <= 35; pos++ {
		if c.Due(pos) {
			fired = append(fired, pos)
			if err := c.Save(uint64(pos), []byte{byte(pos)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := []int64{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}

	// A fresh Checkpointer resuming from epoch 30 owes the next
	// snapshot at 40, not immediately.
	c2 := NewCheckpointer(s, 10, true)
	epoch, _, ok, err := c2.Load()
	if err != nil || !ok || epoch != 30 {
		t.Fatalf("Load: epoch=%d ok=%v err=%v", epoch, ok, err)
	}
	if c2.Due(31) {
		t.Fatal("Due fired immediately after resume")
	}
	if !c2.Due(40) {
		t.Fatal("Due(40) should fire after resuming at 30")
	}

	// resume=false ignores existing snapshots.
	c3 := NewCheckpointer(s, 10, false)
	if _, _, ok, _ := c3.Load(); ok {
		t.Fatal("resume=false returned a snapshot")
	}

	// nil Checkpointer is inert.
	var nilC *Checkpointer
	if nilC.Due(100) {
		t.Fatal("nil Due fired")
	}
	if _, _, ok, err := nilC.Load(); ok || err != nil {
		t.Fatal("nil Load not inert")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-12345)
	e.F64(3.14159)
	e.Str("hello")
	e.U32s([]uint32{1, 2, 3})
	e.I32s([]int32{-1, 0, 9})

	d := NewDec(e.Bytes())
	if d.U8() != 7 || d.U32() != 0xdeadbeef || d.U64() != 1<<60 || d.I64() != -12345 {
		t.Fatal("integer round trip")
	}
	if d.F64() != 3.14159 || d.Str() != "hello" {
		t.Fatal("float/string round trip")
	}
	if u := d.U32s(); len(u) != 3 || u[2] != 3 {
		t.Fatal("u32s round trip")
	}
	if i := d.I32s(); len(i) != 3 || i[0] != -1 {
		t.Fatal("i32s round trip")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if len(d.Rest()) != 0 {
		t.Fatal("trailing bytes")
	}

	// Truncated payloads surface through Err, never panic.
	for cut := 0; cut < len(e.Bytes()); cut += 5 {
		d := NewDec(e.Bytes()[:cut])
		d.U8()
		d.U32()
		d.U64()
		d.I64()
		d.F64()
		d.Str()
		d.U32s()
		d.I32s()
		if cut < len(e.Bytes()) && d.Err() == nil {
			t.Fatalf("cut=%d: truncation undetected", cut)
		}
	}
}
