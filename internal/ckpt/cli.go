package ckpt

import (
	"fmt"

	"repro/internal/obs"
)

// ForCLI resolves the conventional -checkpoint/-resume flag pair the
// commands share into a Checkpointer. saveDir enables checkpointing
// without restoring; resumeDir enables both (restore the newest valid
// snapshot, keep checkpointing into the same directory). Both empty
// returns nil — durability off. Naming both with different values is
// an error: a resumed run always keeps saving where it loads from.
func ForCLI(name, saveDir, resumeDir string, every int64, sink obs.Sink) (*Checkpointer, error) {
	dir, resume := saveDir, false
	if resumeDir != "" {
		if saveDir != "" && saveDir != resumeDir {
			return nil, fmt.Errorf("ckpt: -checkpoint %q and -resume %q disagree; name one directory", saveDir, resumeDir)
		}
		dir, resume = resumeDir, true
	}
	if dir == "" {
		return nil, nil
	}
	store, err := Open(dir, name, WithObs(sink))
	if err != nil {
		return nil, err
	}
	return NewCheckpointer(store, every, resume), nil
}
