package ckpt

import "sync"

// Checkpointer couples a Store with a cadence policy. Engines call
// Due(pos) inside their loop — pos is any monotone position measure
// (iteration count, committed round, evaluations done, or virtual
// time in nanoseconds) — and Save when it fires. A nil *Checkpointer
// is valid and means "checkpointing off": Due reports false and Load
// reports no snapshot, so substrates take a single optional pointer
// and never branch.
type Checkpointer struct {
	store  *Store
	every  int64
	resume bool

	mu   sync.Mutex
	last int64
}

// NewCheckpointer returns a Checkpointer saving roughly every `every`
// position units. resume controls whether Load consults the store
// (false = start fresh even if snapshots exist, e.g. -checkpoint
// without -resume).
func NewCheckpointer(store *Store, every int64, resume bool) *Checkpointer {
	if every < 1 {
		every = 1
	}
	return &Checkpointer{store: store, every: every, resume: resume}
}

// Due reports whether a snapshot is owed at position pos, advancing
// the internal cadence marker when it fires. Returns false on nil.
func (c *Checkpointer) Due(pos int64) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if pos-c.last < c.every {
		return false
	}
	c.last = pos
	return true
}

// Save persists one snapshot through the underlying store.
func (c *Checkpointer) Save(epoch uint64, payload []byte) error {
	return c.store.Save(epoch, payload)
}

// Load returns the newest valid snapshot if resuming is enabled. On
// success the cadence marker advances to the snapshot's epoch so the
// next Due fires one full interval later.
func (c *Checkpointer) Load() (epoch uint64, payload []byte, ok bool, err error) {
	if c == nil || !c.resume {
		return 0, nil, false, nil
	}
	epoch, payload, ok, err = c.store.Load()
	if ok {
		c.mu.Lock()
		c.last = int64(epoch)
		c.mu.Unlock()
	}
	return epoch, payload, ok, err
}

// Store exposes the underlying store (nil on a nil Checkpointer),
// for substrates that manage their own files in the same directory.
func (c *Checkpointer) Store() *Store {
	if c == nil {
		return nil
	}
	return c.store
}
