// Package hetero implements the hybrid CPU+GPU half of the fourth
// sandpile assignment. Go has no OpenCL, so the GPU is replaced by a
// simulated accelerator (per the substitution rule): an executor with
// its own internal parallelism and a fixed per-launch overhead, which
// is exactly the scheduling profile that makes CPU/GPU load balancing
// interesting — the device is fast on big batches and wasteful on
// small ones.
//
// Each iteration the engine splits the active (dirty) tiles between
// the CPU worker pool and the device according to a fraction that a
// throughput-proportional controller adapts online, reproducing the
// "smart dynamic algorithm to load balance between CPUs and GPUs" the
// paper reports the best students built.
package hetero

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sandpile"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DeviceID is the worker id recorded in trace events for tiles the
// simulated accelerator computed; CPU workers use their pool ids
// (0..Workers-1).
const DeviceID = -1

// DeviceProfile describes the simulated accelerator.
type DeviceProfile struct {
	// Workers is the device's internal parallelism (its "compute
	// units"). 0 disables the device entirely.
	Workers int
	// LaunchOverhead is charged once per iteration batch handed to
	// the device, the analog of an OpenCL kernel-launch + transfer
	// cost. It is realized by sleeping, so it shows up in measured
	// throughput just like the real thing would.
	LaunchOverhead time.Duration
}

// Params configures a hybrid run.
type Params struct {
	TileH, TileW int
	// CPUWorkers is the host-side worker-team size; 0 means
	// GOMAXPROCS.
	CPUWorkers int
	Device     DeviceProfile
	// InitialFraction is the starting share of active tiles sent to
	// the device, in [0,1]. Default 0.5.
	InitialFraction float64
	// Adapt disables the controller when false (fixed split).
	Adapt bool
	// MaxIters aborts runaway runs; 0 means sandpile.MaxIterations.
	MaxIters int
	// Recorder, when non-nil, receives one event per computed tile.
	Recorder *trace.Recorder
	// Obs attaches the observability layer: per-iteration batch spans
	// on the "hetero-device"/"hetero-cpu" tracks (the occupancy view),
	// hetero.tiles.* counters, and a hetero.fraction gauge tracking the
	// controller. The zero Sink disables it.
	Obs obs.Sink
	// Faults enables deterministic fault injection: at the plan's
	// StallIter the simulated device stalls mid-launch and the engine
	// degrades gracefully — the device's tiles are reclaimed and
	// drained by the CPU pool, the controller fraction drops to zero,
	// and the rest of the run is CPU-only. nil disables.
	Faults *fault.Plan
}

// Report summarizes a hybrid run.
type Report struct {
	sandpile.Result
	// DeviceTiles and CPUTiles count tile-tasks computed by each side.
	DeviceTiles, CPUTiles int
	// FinalFraction is the controller's device share when the run
	// ended.
	FinalFraction float64
	// DeviceBusy and CPUBusy are the summed wall-clock times each
	// side spent computing.
	DeviceBusy, CPUBusy time.Duration
	// DeviceStalled reports whether an injected stall took the device
	// out of the run; Recoveries counts the degradations (0 or 1).
	DeviceStalled bool
	Recoveries    int
}

func (r Report) String() string {
	s := fmt.Sprintf("%v deviceTiles=%d cpuTiles=%d finalFraction=%.3f",
		r.Result, r.DeviceTiles, r.CPUTiles, r.FinalFraction)
	if r.DeviceStalled {
		s += " deviceStalled"
	}
	return s
}

// Run stabilizes g with the hybrid lazy synchronous engine and writes
// the final configuration into g.
func Run(g *grid.Grid, p Params) Report {
	rep, err := RunContext(context.Background(), g, p)
	if err != nil {
		// Unreachable: only cancellation produces an error, and the
		// background context cannot be cancelled.
		panic(err)
	}
	return rep
}

// RunContext is Run with cancellation: the iteration loop stops
// promptly once ctx is cancelled and the partial report is returned
// alongside ctx.Err(). The grid is left in a consistent (but
// unconverged) intermediate state.
func RunContext(ctx context.Context, g *grid.Grid, p Params) (Report, error) {
	if p.TileH <= 0 {
		p.TileH = 32
	}
	if p.TileW <= 0 {
		p.TileW = 32
	}
	if p.MaxIters <= 0 {
		p.MaxIters = sandpile.MaxIterations
	}
	if p.InitialFraction <= 0 || p.InitialFraction > 1 {
		p.InitialFraction = 0.5
	}
	if p.Device.Workers <= 0 {
		p.InitialFraction = 0
	}

	inj := fault.NewInjector(p.Faults, p.Obs)
	tl := grid.NewTiling(g.H(), g.W(), p.TileH, p.TileW)
	cpu := sched.New(sched.WithWorkers(p.CPUWorkers), sched.WithPolicy(sched.Dynamic), sched.WithChunkSize(1))
	defer cpu.Close()
	var dev *sched.Pool
	if p.Device.Workers > 0 {
		dev = sched.New(sched.WithWorkers(p.Device.Workers), sched.WithPolicy(sched.Dynamic), sched.WithChunkSize(4))
		defer dev.Close()
	}

	before := g.Sum()
	next := grid.New(g.H(), g.W())
	cur := g
	nTiles := tl.NumTiles()
	// The active tiles live in a compacted frontier worklist rebuilt
	// from the changed tiles each iteration, so per-iteration cost
	// scales with the frontier, not the grid. Quiescent tiles are
	// neither computed nor copied: a tile goes quiescent only after a
	// no-change iteration, which leaves both buffers holding identical
	// cells for it (see engine.makeLazyFrontier for the full argument).
	fr := grid.NewFrontier(nTiles, 1)
	fr.SeedAll(nil)
	tileChanges := make([]int, nTiles)
	tileEdges := make([]uint8, nTiles)

	frac := p.InitialFraction
	rep := Report{FinalFraction: frac}

	tr := p.Obs.Tracer
	var devTrack, cpuTrack obs.TrackID
	if tr != nil {
		devTrack = tr.Track("hetero-device", 0, "device")
		cpuTrack = tr.Track("hetero-cpu", 0, "cpu team")
	}
	var cDevTiles, cCPUTiles *obs.Counter
	var cSkipped *obs.Counter
	var gFrac, gFrontier *obs.Gauge
	if m := p.Obs.Metrics; m != nil {
		cDevTiles = m.Counter("hetero.tiles.device")
		cCPUTiles = m.Counter("hetero.tiles.cpu")
		cSkipped = m.Counter("hetero.tiles_skipped")
		gFrac = m.Gauge("hetero.fraction")
		gFrontier = m.Gauge("hetero.frontier_tiles")
		gFrac.Set(frac)
	}

	// Both batch bodies are hoisted out of the loop; the per-iteration
	// state they read (buffers, worklists, iteration) is written before
	// the batches launch and not touched again until both have joined.
	var c, n *grid.Grid
	var iter int
	var devTiles, cpuTiles []int32
	devBody := func(w int, ids []int32) {
		for _, id32 := range ids {
			id := int(id32)
			t := tl.Tile(id)
			var ts time.Duration
			if p.Recorder != nil {
				ts = p.Recorder.Now()
			}
			ch := sandpile.SyncRegion(c, n, t.Y, t.Y+t.H, t.X, t.X+t.W)
			tileChanges[id] = ch
			if ch > 0 {
				tileEdges[id] = sandpile.SyncEdgeMask(c, n, t.Y, t.Y+t.H, t.X, t.X+t.W)
			}
			if p.Recorder != nil {
				p.Recorder.Record(trace.Event{
					Iteration: iter, Worker: DeviceID, Tile: id,
					Start: ts, Duration: p.Recorder.Now() - ts,
					Cells: t.H * t.W,
				})
			}
		}
	}
	cpuBody := func(w int, ids []int32) {
		for _, id32 := range ids {
			id := int(id32)
			t := tl.Tile(id)
			var ts time.Duration
			if p.Recorder != nil {
				ts = p.Recorder.Now()
			}
			ch := sandpile.SyncRegion(c, n, t.Y, t.Y+t.H, t.X, t.X+t.W)
			tileChanges[id] = ch
			if ch > 0 {
				tileEdges[id] = sandpile.SyncEdgeMask(c, n, t.Y, t.Y+t.H, t.X, t.X+t.W)
			}
			if p.Recorder != nil {
				p.Recorder.Record(trace.Event{
					Iteration: iter, Worker: w, Tile: id,
					Start: ts, Duration: p.Recorder.Now() - ts,
					Cells: t.H * t.W,
				})
			}
		}
	}
	done := make(chan time.Duration, 1)
	deviceBatch := func() {
		start := time.Now()
		batchTS := tr.Now()
		time.Sleep(p.Device.LaunchOverhead)
		// Cancellation is handled at the iteration loop's top; the
		// batch itself drains early via the shared abort flag.
		_ = dev.RunIndexedContext(ctx, devTiles, devBody)
		el := time.Since(start)
		if tr != nil {
			tr.Span(devTrack, "device batch", batchTS, el,
				obs.Arg{Key: "iter", Value: int64(iter)},
				obs.Arg{Key: "tiles", Value: int64(len(devTiles))})
		}
		done <- el
	}

	var runErr error
	stalledNow := false
	for {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		rep.Iterations++
		iter = rep.Iterations

		active := fr.Active()
		gFrontier.Set(float64(len(active)))
		cSkipped.Add(int64(nTiles - len(active)))
		c, n = cur, next
		split := int(frac * float64(len(active)))
		devTiles = active[:split]
		cpuTiles = active[split:]

		if dev != nil && inj.DeviceStall(iter) {
			// The device stalls mid-launch: its tiles for this
			// iteration are reclaimed by the CPU pool (drained below as
			// part of the ordinary CPU batch) and the device never gets
			// work again — graceful degradation to CPU-only.
			cpuTiles = active
			devTiles = nil
			dev = nil
			frac = 0
			gFrac.Set(0)
			rep.DeviceStalled = true
			rep.Recoveries++
			stalledNow = true
		}

		if dev != nil && len(devTiles) > 0 {
			go deviceBatch()
		} else {
			done <- 0
		}

		cpuStart := time.Now()
		cpuTS := tr.Now()
		_ = cpu.RunIndexedContext(ctx, cpuTiles, cpuBody)
		cpuTime := time.Since(cpuStart)
		devTime := <-done
		if tr != nil {
			tr.Span(cpuTrack, "cpu batch", cpuTS, cpuTime,
				obs.Arg{Key: "iter", Value: int64(iter)},
				obs.Arg{Key: "tiles", Value: int64(len(cpuTiles))})
		}
		if stalledNow {
			// The recovery span covers the CPU pool draining the
			// reclaimed device share.
			inj.NoteRecovery("hetero", cpuTS, cpuTime,
				obs.Arg{Key: "iter", Value: int64(iter)},
				obs.Arg{Key: "reclaimed_tiles", Value: int64(len(cpuTiles))})
			stalledNow = false
		}

		rep.DeviceTiles += len(devTiles)
		rep.CPUTiles += len(cpuTiles)
		rep.DeviceBusy += devTime
		rep.CPUBusy += cpuTime
		cDevTiles.Add(int64(len(devTiles)))
		cCPUTiles.Add(int64(len(cpuTiles)))

		if p.Adapt && dev != nil && len(devTiles) > 0 && len(cpuTiles) > 0 &&
			devTime > 0 && cpuTime > 0 {
			// Throughput-proportional rebalancing with damping.
			devRate := float64(len(devTiles)) / devTime.Seconds()
			cpuRate := float64(len(cpuTiles)) / cpuTime.Seconds()
			target := devRate / (devRate + cpuRate)
			frac = 0.5*frac + 0.5*target
			if frac < 0.02 {
				frac = 0.02
			}
			if frac > 0.98 {
				frac = 0.98
			}
			gFrac.Set(frac)
		}

		total := 0
		for _, id := range active {
			total += tileChanges[id]
		}
		rep.Topples += uint64(total)
		cur, next = next, cur
		if total == 0 || rep.Iterations >= p.MaxIters {
			break
		}
		// Lazy wake-up: a changed tile reruns, and wakes a neighbor
		// only when the facing edge changed its outward contribution
		// (see engine.makeLazyFrontier).
		fr.Begin()
		for _, id := range active {
			if tileChanges[id] == 0 {
				continue
			}
			fr.Add(id, 0)
			for _, d := range grid.Dirs {
				if tileEdges[id]&d != 0 {
					if nbID := tl.Neighbor(int(id), d); nbID >= 0 {
						fr.Add(int32(nbID), 0)
					}
				}
			}
		}
		fr.Flip()
	}
	if cur != g {
		g.CopyFrom(cur)
	}
	g.ClearHalo()
	rep.FinalFraction = frac
	rep.Absorbed = before - g.Sum()
	return rep, runErr
}
