package hetero

// options.go is the functional-options front of the package: New
// composes a Runner from With* options, replacing hand-built Params
// literals. Run(g, Params{...}) remains as a back-compat shim.

import (
	"context"
	"time"

	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Option configures a hybrid run built by New.
type Option func(*Params)

// WithTile sets the tile dimensions (default 32x32).
func WithTile(h, w int) Option {
	return func(p *Params) { p.TileH, p.TileW = h, w }
}

// WithCPUWorkers sets the host-side worker-team size (default
// GOMAXPROCS).
func WithCPUWorkers(n int) Option {
	return func(p *Params) { p.CPUWorkers = n }
}

// WithDevice attaches a simulated accelerator with the given internal
// parallelism and per-launch overhead. Without this option the run is
// CPU-only.
func WithDevice(workers int, launchOverhead time.Duration) Option {
	return func(p *Params) {
		p.Device = DeviceProfile{Workers: workers, LaunchOverhead: launchOverhead}
	}
}

// WithInitialFraction sets the starting device share of active tiles.
func WithInitialFraction(f float64) Option {
	return func(p *Params) { p.InitialFraction = f }
}

// WithFixedSplit disables the throughput-proportional controller
// (New enables it by default — the adaptive split is the point of the
// assignment).
func WithFixedSplit() Option {
	return func(p *Params) { p.Adapt = false }
}

// WithMaxIters bounds the iteration count.
func WithMaxIters(n int) Option {
	return func(p *Params) { p.MaxIters = n }
}

// WithRecorder attaches a per-tile trace recorder.
func WithRecorder(r *trace.Recorder) Option {
	return func(p *Params) { p.Recorder = r }
}

// WithObs attaches the observability layer.
func WithObs(sink obs.Sink) Option {
	return func(p *Params) { p.Obs = sink }
}

// WithFaults arms deterministic fault injection (see Params.Faults).
func WithFaults(plan *fault.Plan) Option {
	return func(p *Params) { p.Faults = plan }
}

// Runner is a configured hybrid run, built by New.
type Runner struct {
	g *grid.Grid
	p Params
}

// New configures a hybrid run over g. Unlike the zero Params, New
// defaults the controller to adaptive; use WithFixedSplit to pin the
// split.
func New(g *grid.Grid, opts ...Option) *Runner {
	p := Params{Adapt: true}
	for _, o := range opts {
		o(&p)
	}
	return &Runner{g: g, p: p}
}

// Run stabilizes the runner's grid and returns the report.
func (r *Runner) Run() Report { return Run(r.g, r.p) }

// RunContext is Run with cancellation.
func (r *Runner) RunContext(ctx context.Context) (Report, error) {
	return RunContext(ctx, r.g, r.p)
}
