package hetero

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
)

func TestRunReportsObs(t *testing.T) {
	sink := obs.Sink{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(nil)}
	g := grid.New(64, 64)
	g.Set(32, 32, 20000)
	rep := Run(g, Params{
		TileH: 16, TileW: 16, CPUWorkers: 2,
		Device: DeviceProfile{Workers: 2, LaunchOverhead: 100 * time.Microsecond},
		Adapt:  true,
		Obs:    sink,
	})
	s := sink.Metrics.Snapshot()
	if s.Counters["hetero.tiles.device"] != int64(rep.DeviceTiles) {
		t.Fatalf("device tile counter = %d, report = %d",
			s.Counters["hetero.tiles.device"], rep.DeviceTiles)
	}
	if s.Counters["hetero.tiles.cpu"] != int64(rep.CPUTiles) || rep.CPUTiles == 0 {
		t.Fatalf("cpu tile counter = %d, report = %d",
			s.Counters["hetero.tiles.cpu"], rep.CPUTiles)
	}
	if f := s.Gauges["hetero.fraction"]; f <= 0 || f >= 1 {
		t.Fatalf("fraction gauge = %v, want in (0,1)", f)
	}
	var devBatches, cpuBatches int
	for _, sp := range sink.Tracer.Spans() {
		switch sink.Tracer.ProcessName(sp.Track.PID) {
		case "hetero-device":
			devBatches++
		case "hetero-cpu":
			cpuBatches++
		}
	}
	if cpuBatches != rep.Iterations {
		t.Fatalf("cpu batch spans = %d, want one per iteration (%d)", cpuBatches, rep.Iterations)
	}
	if rep.DeviceTiles > 0 && devBatches == 0 {
		t.Fatal("device computed tiles but produced no batch spans")
	}
}
