package hetero

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/sandpile"
)

func TestDeviceStallDegradesToCPU(t *testing.T) {
	init := sandpile.Center(20000).Build(64, 64, rand.New(rand.NewSource(5)))
	want := oracle(init)
	g := init.Clone()
	rep := New(g,
		WithTile(8, 8),
		WithCPUWorkers(2),
		WithDevice(2, 0),
		WithFaults(&fault.Plan{Seed: 1, StallIter: 3}),
	).Run()

	// Graceful degradation: same fixed point as the fault-free oracle,
	// with the device dead from iteration 3 on.
	if !g.Equal(want) {
		t.Fatalf("post-stall fixed point differs: %v", g.Diff(want, 5))
	}
	if !rep.DeviceStalled || rep.Recoveries != 1 {
		t.Fatalf("stall not reported: %+v", rep)
	}
	if rep.FinalFraction != 0 {
		t.Fatalf("device still has share %.3f after stall", rep.FinalFraction)
	}
	if rep.CPUTiles == 0 {
		t.Fatal("CPU computed nothing after reclaim")
	}
}

func TestDeviceStallBeforeFirstIteration(t *testing.T) {
	// StallIter 1 kills the device before it ever computes: the run
	// must be indistinguishable from CPU-only, except for the report.
	init := sandpile.Uniform(5).Build(32, 32, nil)
	want := oracle(init)
	g := init.Clone()
	rep := New(g,
		WithTile(8, 8),
		WithCPUWorkers(2),
		WithDevice(2, 0),
		WithFaults(&fault.Plan{Seed: 1, StallIter: 1}),
	).Run()
	if !g.Equal(want) {
		t.Fatal("wrong fixed point after immediate stall")
	}
	if rep.DeviceTiles != 0 {
		t.Fatalf("stalled-at-1 device computed %d tiles", rep.DeviceTiles)
	}
	if !rep.DeviceStalled {
		t.Fatalf("stall not reported: %+v", rep)
	}
}

func TestNoStallWithoutPlan(t *testing.T) {
	init := sandpile.Uniform(4).Build(32, 32, nil)
	g := init.Clone()
	rep := New(g, WithTile(8, 8), WithCPUWorkers(2), WithDevice(2, 0)).Run()
	if rep.DeviceStalled || rep.Recoveries != 0 {
		t.Fatalf("fault-free run reported a stall: %+v", rep)
	}
	if rep.DeviceTiles == 0 {
		t.Fatal("device computed nothing")
	}
}

func TestRunContextCancelledHetero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	init := sandpile.Uniform(5).Build(32, 32, nil)
	g := init.Clone()
	rep, err := New(g, WithTile(8, 8), WithCPUWorkers(2)).RunContext(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Iterations != 0 {
		t.Fatalf("cancelled-before-start run iterated %d times", rep.Iterations)
	}
}

func TestNewOptionsMatchParams(t *testing.T) {
	init := sandpile.Uniform(4).Build(32, 32, nil)
	a := init.Clone()
	repA := Run(a, Params{TileH: 8, TileW: 8, CPUWorkers: 2, Adapt: true})
	b := init.Clone()
	repB := New(b, WithTile(8, 8), WithCPUWorkers(2)).Run()
	if !a.Equal(b) {
		t.Fatal("options and Params runs diverged")
	}
	if repA.Iterations != repB.Iterations || repA.Topples != repB.Topples {
		t.Fatalf("reports differ: %+v vs %+v", repA, repB)
	}
}
