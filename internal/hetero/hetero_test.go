package hetero

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/grid"
	"repro/internal/sandpile"
	"repro/internal/trace"
)

func oracle(g *grid.Grid) *grid.Grid {
	o := g.Clone()
	sandpile.StabilizeAsyncSeq(o)
	return o
}

func TestHybridMatchesOracle(t *testing.T) {
	for _, cfg := range []sandpile.Config{
		sandpile.Uniform(4), sandpile.Center(8000), sandpile.Sparse(0.01, 300),
	} {
		init := cfg.Build(64, 64, rand.New(rand.NewSource(2)))
		want := oracle(init)
		g := init.Clone()
		rep := Run(g, Params{
			TileH: 8, TileW: 8, CPUWorkers: 2,
			Device: DeviceProfile{Workers: 2}, Adapt: true,
		})
		if !g.Equal(want) {
			t.Fatalf("%s: hybrid fixed point differs: %v", cfg.Name, g.Diff(want, 5))
		}
		if rep.DeviceTiles == 0 {
			t.Fatalf("%s: device computed nothing", cfg.Name)
		}
		if rep.CPUTiles == 0 {
			t.Fatalf("%s: CPU computed nothing", cfg.Name)
		}
	}
}

func TestCPUOnlyWhenDeviceDisabled(t *testing.T) {
	init := sandpile.Uniform(4).Build(32, 32, nil)
	want := oracle(init)
	g := init.Clone()
	rep := Run(g, Params{TileH: 8, TileW: 8, CPUWorkers: 2, Device: DeviceProfile{Workers: 0}})
	if !g.Equal(want) {
		t.Fatal("CPU-only hybrid wrong fixed point")
	}
	if rep.DeviceTiles != 0 {
		t.Fatalf("disabled device computed %d tiles", rep.DeviceTiles)
	}
	if rep.CPUTiles == 0 {
		t.Fatal("CPU computed nothing")
	}
}

func TestFixedSplitNoAdaptation(t *testing.T) {
	init := sandpile.Uniform(5).Build(48, 48, nil)
	g := init.Clone()
	rep := Run(g, Params{
		TileH: 8, TileW: 8, CPUWorkers: 1,
		Device: DeviceProfile{Workers: 1}, InitialFraction: 0.25, Adapt: false,
	})
	if rep.FinalFraction != 0.25 {
		t.Fatalf("fraction drifted without Adapt: %v", rep.FinalFraction)
	}
}

func TestAdaptationShiftsAwayFromSlowDevice(t *testing.T) {
	// A device with a large launch overhead and one worker should end
	// up with a small share.
	init := sandpile.Uniform(6).Build(96, 96, nil)
	g := init.Clone()
	rep := Run(g, Params{
		TileH: 8, TileW: 8, CPUWorkers: 4,
		Device:          DeviceProfile{Workers: 1, LaunchOverhead: 2 * time.Millisecond},
		InitialFraction: 0.5, Adapt: true,
	})
	if rep.FinalFraction >= 0.5 {
		t.Fatalf("controller did not shift load off the slow device: final fraction %.3f",
			rep.FinalFraction)
	}
	if !sandpile.Stable(g) {
		t.Fatal("unstable result")
	}
}

func TestTraceOwnershipFig4(t *testing.T) {
	// Piles in one quadrant of a large grid: far tiles must never be
	// computed (black in Fig 4), computed tiles must have CPU or device
	// owners. Three piles keep the steady-state frontier wide enough
	// that the device split int(frac*len(active)) stays nonzero — a
	// single pile's edge-gated frontier is 1–2 tiles, which starves the
	// device side regardless of the controller.
	g := grid.New(128, 128)
	g.Set(3, 3, 8000)
	g.Set(3, 36, 8000)
	g.Set(36, 3, 8000)
	rec := trace.NewRecorder()
	Run(g, Params{
		TileH: 16, TileW: 16, CPUWorkers: 2,
		Device: DeviceProfile{Workers: 1}, Adapt: true, Recorder: rec,
	})
	// Iteration 1 computes every tile (all start dirty); the Fig 4
	// view is the steady state after laziness kicks in.
	var later []trace.Event
	for _, e := range rec.Events() {
		if e.Iteration > 1 {
			later = append(later, e)
		}
	}
	owners := trace.TileOwners(later)
	tl := grid.NewTiling(128, 128, 16, 16)
	far := tl.TileOf(120, 120).ID
	if _, ok := owners[far]; ok {
		t.Fatal("far quiescent tile was computed; lazy hybrid is broken")
	}
	near := tl.TileOf(0, 0).ID
	if _, ok := owners[near]; !ok {
		t.Fatal("active tile has no owner")
	}
	devOwned, cpuOwned := 0, 0
	for _, w := range owners {
		if w == DeviceID {
			devOwned++
		} else {
			cpuOwned++
		}
	}
	if devOwned == 0 || cpuOwned == 0 {
		t.Fatalf("ownership not mixed: device=%d cpu=%d", devOwned, cpuOwned)
	}
}

func TestGrainAccounting(t *testing.T) {
	init := sandpile.Uniform(5).Build(40, 40, nil)
	g := init.Clone()
	rep := Run(g, Params{TileH: 8, TileW: 8, CPUWorkers: 2, Device: DeviceProfile{Workers: 1}})
	if rep.Absorbed+g.Sum() != init.Sum() {
		t.Fatalf("grains leaked: absorbed=%d remaining=%d initial=%d",
			rep.Absorbed, g.Sum(), init.Sum())
	}
}

func TestMaxItersAborts(t *testing.T) {
	g := sandpile.Center(100000).Build(64, 64, nil)
	rep := Run(g, Params{TileH: 8, TileW: 8, CPUWorkers: 2, Device: DeviceProfile{Workers: 1}, MaxIters: 4})
	if rep.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4", rep.Iterations)
	}
}

func TestQuickHybridAbelian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 8+rng.Intn(40), 8+rng.Intn(40)
		init := sandpile.Random(9).Build(h, w, rng)
		want := oracle(init)
		g := init.Clone()
		Run(g, Params{
			TileH: 2 + rng.Intn(8), TileW: 2 + rng.Intn(8),
			CPUWorkers: 1 + rng.Intn(3),
			Device:     DeviceProfile{Workers: rng.Intn(3)},
			Adapt:      rng.Intn(2) == 0,
		})
		return g.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReportString(t *testing.T) {
	g := sandpile.Uniform(4).Build(16, 16, nil)
	rep := Run(g, Params{TileH: 4, TileW: 4, CPUWorkers: 1, Device: DeviceProfile{Workers: 1}})
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}
