package hetero

import (
	"testing"
	"time"

	"repro/internal/sandpile"
)

// Ablation benchmarks for the hybrid scheduler: what the adaptive
// fraction controller buys over fixed splits, and what the device's
// launch overhead costs — the design choices DESIGN.md calls out for
// the CPU+GPU half of assignment 4.

func benchHybrid(b *testing.B, p Params) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := sandpile.Sparse(0.002, 1000).Build(128, 128, nil)
		b.StartTimer()
		Run(g, p)
	}
}

func BenchmarkHybridAdaptive(b *testing.B) {
	benchHybrid(b, Params{
		TileH: 16, TileW: 16, CPUWorkers: 3,
		Device: DeviceProfile{Workers: 1, LaunchOverhead: 20 * time.Microsecond},
		Adapt:  true,
	})
}

func BenchmarkHybridFixedHalf(b *testing.B) {
	benchHybrid(b, Params{
		TileH: 16, TileW: 16, CPUWorkers: 3,
		Device:          DeviceProfile{Workers: 1, LaunchOverhead: 20 * time.Microsecond},
		InitialFraction: 0.5, Adapt: false,
	})
}

func BenchmarkHybridCPUOnly(b *testing.B) {
	benchHybrid(b, Params{TileH: 16, TileW: 16, CPUWorkers: 4})
}

func BenchmarkHybridLaunchOverheadSweep(b *testing.B) {
	for _, overhead := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond} {
		b.Run(overhead.String(), func(b *testing.B) {
			benchHybrid(b, Params{
				TileH: 16, TileW: 16, CPUWorkers: 3,
				Device: DeviceProfile{Workers: 2, LaunchOverhead: overhead},
				Adapt:  true,
			})
		})
	}
}
