package engine

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/sandpile"
)

// ckptParams returns the fixed run parameters used by the kill/resume
// tests; segments must agree on them for the frontier fast path.
func ckptParams() Params {
	return Params{TileH: 8, TileW: 8, Workers: 4}
}

func openCheckpointer(t *testing.T, dir string, every int64) *ckpt.Checkpointer {
	t.Helper()
	store, err := ckpt.Open(dir, "engine")
	if err != nil {
		t.Fatal(err)
	}
	return ckpt.NewCheckpointer(store, every, true)
}

// newestSnapshot returns the path of the highest-epoch snapshot file.
func newestSnapshot(t *testing.T, dir string) string {
	t.Helper()
	files, _ := filepath.Glob(filepath.Join(dir, "engine.*.ckpt"))
	best, bestEpoch := "", -1
	for _, f := range files {
		parts := strings.Split(filepath.Base(f), ".")
		if len(parts) != 3 {
			continue
		}
		if e, err := strconv.Atoi(parts[1]); err == nil && e > bestEpoch {
			best, bestEpoch = f, e
		}
	}
	if best == "" {
		t.Fatalf("no snapshot files in %s", dir)
	}
	return best
}

// TestKillResumeDeterminism is the engine half of the acceptance
// criterion: for every variant, a run cut short after taking durable
// snapshots and then resumed from disk must produce the identical
// final grid AND identical Iterations/Topples/Absorbed totals as the
// same run left uninterrupted. The interrupted segment stops via
// MaxIters, which exercises the same code path as a SIGKILL between
// iterations (cmd/chaos covers the literal-SIGKILL half).
func TestKillResumeDeterminism(t *testing.T) {
	init := sandpile.Center(4000).Build(40, 40, nil)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ref := init.Clone()
			want, err := Run(name, ref, ckptParams())
			if err != nil {
				t.Fatal(err)
			}
			if want.Iterations < 8 {
				t.Fatalf("reference run too short (%d iterations) to interrupt", want.Iterations)
			}

			dir := t.TempDir()
			p1 := ckptParams()
			p1.MaxIters = want.Iterations / 2
			p1.Ckpt = openCheckpointer(t, dir, 3)
			if _, err := Run(name, init.Clone(), p1); err != nil {
				t.Fatalf("interrupted segment: %v", err)
			}
			newestSnapshot(t, dir) // at least one durable epoch exists

			// Restart from scratch: a fresh initial grid, the full
			// iteration budget, and a resuming checkpointer.
			g := init.Clone()
			p2 := ckptParams()
			p2.Ckpt = openCheckpointer(t, dir, 3)
			got, err := Run(name, g, p2)
			if err != nil {
				t.Fatalf("resumed segment: %v", err)
			}
			if got != want {
				t.Fatalf("resumed totals %+v, want %+v", got, want)
			}
			if !g.Equal(ref) {
				t.Fatalf("resumed fixed point differs: %v", g.Diff(ref, 5))
			}
		})
	}
}

// A run killed and resumed several times still converges on the
// uninterrupted totals and fixed point.
func TestKillResumeRepeated(t *testing.T) {
	init := sandpile.Random(8).Build(36, 36, rand.New(rand.NewSource(7)))
	for _, name := range []string{"seq-sync", "lazy-sync", "async-waves", "lazy-async-waves"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ref := init.Clone()
			want, err := Run(name, ref, ckptParams())
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			for _, frac := range []int{4, 2} { // two partial segments
				p := ckptParams()
				p.MaxIters = want.Iterations / frac
				p.Ckpt = openCheckpointer(t, dir, 2)
				if _, err := Run(name, init.Clone(), p); err != nil {
					t.Fatal(err)
				}
			}
			g := init.Clone()
			p := ckptParams()
			p.Ckpt = openCheckpointer(t, dir, 2)
			got, err := Run(name, g, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want || !g.Equal(ref) {
				t.Fatalf("totals %+v want %+v; grid diff %v", got, want, g.Diff(ref, 5))
			}
		})
	}
}

// Corrupting the newest snapshot must fall back to the previous valid
// epoch (the store keeps two by default) and still reach the same
// fixed point and totals — the second acceptance criterion.
func TestResumeCorruptLatestFallsBack(t *testing.T) {
	init := sandpile.Center(3000).Build(32, 32, nil)
	const name = "lazy-sync"
	ref := init.Clone()
	want, err := Run(name, ref, ckptParams())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	p1 := ckptParams()
	p1.MaxIters = want.Iterations * 3 / 4
	p1.Ckpt = openCheckpointer(t, dir, 1) // every iteration → ≥2 retained epochs
	if _, err := Run(name, init.Clone(), p1); err != nil {
		t.Fatal(err)
	}

	newest := newestSnapshot(t, dir)
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	g := init.Clone()
	p2 := ckptParams()
	p2.Ckpt = openCheckpointer(t, dir, 1)
	got, err := Run(name, g, p2)
	if err != nil {
		t.Fatalf("resume after corruption: %v", err)
	}
	if got != want || !g.Equal(ref) {
		t.Fatalf("fallback resume diverged: totals %+v want %+v", got, want)
	}
}

// Snapshots are variant-portable: a frontier saved by one variant (or
// none at all, from an eager one) resumes correctly under another —
// the worklist degrades to seed-everything, which is always sound.
func TestCrossVariantResume(t *testing.T) {
	init := sandpile.Uniform(6).Build(30, 30, nil)
	want := oracle(init)
	for _, pair := range [][2]string{
		{"seq-sync", "lazy-sync"},        // eager snapshot → lazy resume
		{"lazy-async-waves", "omp-sync"}, // lazy snapshot → eager resume
		{"lazy-sync", "lazy-async-waves"},
	} {
		writer, reader := pair[0], pair[1]
		dir := t.TempDir()
		p1 := ckptParams()
		p1.MaxIters = 10
		p1.Ckpt = openCheckpointer(t, dir, 3)
		if _, err := Run(writer, init.Clone(), p1); err != nil {
			t.Fatal(err)
		}
		g := init.Clone()
		p2 := ckptParams()
		p2.Ckpt = openCheckpointer(t, dir, 3)
		if _, err := Run(reader, g, p2); err != nil {
			t.Fatalf("%s→%s: %v", writer, reader, err)
		}
		if !g.Equal(want) {
			t.Fatalf("%s→%s: wrong fixed point: %v", writer, reader, g.Diff(want, 5))
		}
	}
}

// A checkpointer opened with resume=false ignores existing snapshots
// and starts from the supplied grid.
func TestNoResumeStartsFresh(t *testing.T) {
	init := sandpile.Center(2000).Build(24, 24, nil)
	dir := t.TempDir()
	p1 := ckptParams()
	p1.MaxIters = 6
	p1.Ckpt = openCheckpointer(t, dir, 2)
	if _, err := Run("seq-sync", init.Clone(), p1); err != nil {
		t.Fatal(err)
	}
	store, err := ckpt.Open(dir, "engine")
	if err != nil {
		t.Fatal(err)
	}
	g := init.Clone()
	p2 := ckptParams()
	p2.Ckpt = ckpt.NewCheckpointer(store, 2, false)
	got, err := Run("seq-sync", g, p2)
	if err != nil {
		t.Fatal(err)
	}
	ref := init.Clone()
	want, err := Run("seq-sync", ref, ckptParams())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fresh run with stale snapshots present: %+v want %+v", got, want)
	}
}
