package engine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/sandpile"
	"repro/internal/sched"
	"repro/internal/trace"
)

// oracle stabilizes a copy with the sequential asynchronous reference
// and returns it.
func oracle(g *grid.Grid) *grid.Grid {
	o := g.Clone()
	sandpile.StabilizeAsyncSeq(o)
	return o
}

func TestRegistryHasAllVariants(t *testing.T) {
	want := []string{
		"async-waves", "lazy-async-waves", "lazy-sync", "lazy-sync-inner",
		"omp-sync", "seq-async", "seq-sync", "tiled-sync", "tiled-sync-inner",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("no-such-variant")
	if err == nil || !strings.Contains(err.Error(), "unknown variant") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Variant{Name: "seq-sync"})
}

// TestAllVariantsMatchOracle is the master Abelian cross-check: every
// registered variant must reach the oracle's exact fixed point.
func TestAllVariantsMatchOracle(t *testing.T) {
	configs := []sandpile.Config{
		sandpile.Center(5000),
		sandpile.Uniform(4),
		sandpile.Uniform(6),
		sandpile.Sparse(0.01, 200),
		sandpile.Random(8),
	}
	for _, cfg := range configs {
		rng := rand.New(rand.NewSource(11))
		init := cfg.Build(50, 46, rng)
		want := oracle(init)
		for _, name := range Names() {
			g := init.Clone()
			res, err := Run(name, g, Params{TileH: 8, TileW: 8, Workers: 4, Policy: sched.Dynamic})
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, name, err)
			}
			if !sandpile.Stable(g) {
				t.Fatalf("%s/%s: grid not stable after %v", cfg.Name, name, res)
			}
			if !g.Equal(want) {
				t.Fatalf("%s/%s: fixed point differs from oracle: %v",
					cfg.Name, name, g.Diff(want, 5))
			}
		}
	}
}

// TestVariantsUnderEveryPolicy exercises each parallel variant under
// each scheduling policy.
func TestVariantsUnderEveryPolicy(t *testing.T) {
	init := sandpile.Random(8).Build(40, 40, rand.New(rand.NewSource(3)))
	want := oracle(init)
	for _, name := range Names() {
		v, _ := Lookup(name)
		if !v.Parallel {
			continue
		}
		for _, policy := range sched.Policies {
			g := init.Clone()
			if _, err := Run(name, g, Params{TileH: 8, TileW: 8, Workers: 3, Policy: policy, ChunkSize: 2}); err != nil {
				t.Fatal(err)
			}
			if !g.Equal(want) {
				t.Fatalf("%s/%v: wrong fixed point: %v", name, policy, g.Diff(want, 3))
			}
		}
	}
}

func TestQuickParallelVariantsAbelian(t *testing.T) {
	names := []string{"omp-sync", "tiled-sync", "lazy-sync", "async-waves", "lazy-async-waves"}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 4+rng.Intn(40), 4+rng.Intn(40)
		init := sandpile.Random(10).Build(h, w, rng)
		want := oracle(init)
		name := names[int(pick)%len(names)]
		g := init.Clone()
		if _, err := Run(name, g, Params{
			TileH:   2 + rng.Intn(10),
			TileW:   2 + rng.Intn(10),
			Workers: 1 + rng.Intn(6),
			Policy:  sched.Policies[rng.Intn(len(sched.Policies))],
		}); err != nil {
			return false
		}
		return g.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLazySkipsQuiescentTiles(t *testing.T) {
	// A single pile in one corner of a large grid: far tiles must be
	// computed at most a handful of times under the lazy variant.
	g := grid.New(128, 128)
	g.Set(2, 2, 2000)
	rec := trace.NewRecorder()
	res, err := Run("lazy-sync", g, Params{
		TileH: 16, TileW: 16, Workers: 2,
		Recorder: rec, TraceFrom: 1, TraceTo: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	// Count computed (Cells>0) events for the far-corner tile.
	tl := grid.NewTiling(128, 128, 16, 16)
	farID := tl.TileOf(120, 120).ID
	farComputed := 0
	for _, e := range events {
		if e.Tile == farID && e.Cells > 0 {
			farComputed++
		}
	}
	if farComputed > 2 {
		t.Fatalf("far tile computed %d times over %d iterations; lazy evaluation is broken",
			farComputed, res.Iterations)
	}
	if res.Iterations < 10 {
		t.Fatalf("suspiciously few iterations: %v", res)
	}
}

func TestLazyMatchesEagerWorkloads(t *testing.T) {
	for _, cfg := range []sandpile.Config{sandpile.Sparse(0.002, 500), sandpile.Center(3000)} {
		init := cfg.Build(96, 96, rand.New(rand.NewSource(9)))
		eager, lazy := init.Clone(), init.Clone()
		re, _ := Run("tiled-sync", eager, Params{TileH: 16, TileW: 16, Workers: 4})
		rl, _ := Run("lazy-sync", lazy, Params{TileH: 16, TileW: 16, Workers: 4})
		if !eager.Equal(lazy) {
			t.Fatalf("%s: lazy and eager fixed points differ", cfg.Name)
		}
		if rl.Iterations != re.Iterations {
			t.Fatalf("%s: lazy took %d iterations, eager %d; lazy must not change iteration count",
				cfg.Name, rl.Iterations, re.Iterations)
		}
	}
}

func TestTraceWindowRespected(t *testing.T) {
	g := sandpile.Uniform(4).Build(32, 32, nil)
	rec := trace.NewRecorder()
	_, err := Run("tiled-sync", g, Params{
		TileH: 8, TileW: 8, Workers: 2,
		Recorder: rec, TraceFrom: 3, TraceTo: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded in window")
	}
	for _, e := range events {
		if e.Iteration < 3 || e.Iteration > 5 {
			t.Fatalf("event outside trace window: iteration %d", e.Iteration)
		}
	}
	// 16 tiles x 3 iterations
	if len(events) != 48 {
		t.Fatalf("events = %d, want 48", len(events))
	}
}

func TestNoTracingWithoutRecorder(t *testing.T) {
	g := sandpile.Uniform(4).Build(16, 16, nil)
	if _, err := Run("tiled-sync", g, Params{TileH: 4, TileW: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncWavesRejectsTinyTiles(t *testing.T) {
	// The variant's validation panic is converted to an error by Run's
	// panic guard rather than unwinding the caller.
	g := sandpile.Uniform(4).Build(16, 16, nil)
	_, err := Run("async-waves", g, Params{TileH: 1, TileW: 4})
	if err == nil || !strings.Contains(err.Error(), "at least 2x2") {
		t.Fatalf("err = %v, want tile-size rejection", err)
	}
}

func TestMaxItersAborts(t *testing.T) {
	g := sandpile.Center(100000).Build(64, 64, nil)
	res, err := Run("omp-sync", g, Params{Workers: 2, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d, want abort at 5", res.Iterations)
	}
	if sandpile.Stable(g) {
		t.Fatal("100k-grain pile cannot be stable after 5 iterations")
	}
}

func TestSyncVariantsAgreeOnIterationCount(t *testing.T) {
	// All synchronous variants perform the same logical steps, so
	// their iteration counts must agree exactly.
	init := sandpile.Random(7).Build(33, 29, rand.New(rand.NewSource(21)))
	var iters []int
	for _, name := range []string{"seq-sync", "omp-sync", "tiled-sync", "lazy-sync", "tiled-sync-inner", "lazy-sync-inner"} {
		g := init.Clone()
		res, err := Run(name, g, Params{TileH: 8, TileW: 8, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		iters = append(iters, res.Iterations)
	}
	for i := 1; i < len(iters); i++ {
		if iters[i] != iters[0] {
			t.Fatalf("iteration counts diverge: %v", iters)
		}
	}
}

func TestResultAccounting(t *testing.T) {
	init := sandpile.Uniform(5).Build(24, 24, nil)
	for _, name := range Names() {
		g := init.Clone()
		res, err := Run(name, g, Params{TileH: 4, TileW: 4, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Absorbed+g.Sum() != uint64(5*24*24) {
			t.Fatalf("%s: grain accounting broken: absorbed=%d remaining=%d", name, res.Absorbed, g.Sum())
		}
		if res.Topples == 0 {
			t.Fatalf("%s: no topples recorded for an unstable start", name)
		}
	}
}

func TestRunRecoversWorkerPanic(t *testing.T) {
	// A variant whose parallel body panics: sched.Pool.Run propagates
	// the panic to the caller, and engine.Run must convert it into an
	// error instead of crashing the process. Exercised via runGuarded
	// (the path Run takes) so the global registry stays clean — other
	// tests iterate over every registered variant.
	v := Variant{
		Name:        "test-panicky",
		Description: "panics from a worker body (test only)",
		Run: func(g *grid.Grid, p Params) sandpile.Result {
			pool := sched.New(sched.WithWorkers(2))
			defer pool.Close()
			pool.Run(8, func(w, lo, hi int) {
				if lo <= 5 && 5 < hi {
					panic("tile exploded")
				}
			})
			return sandpile.Result{}
		},
	}
	_, err := runGuarded(v.Name, v, grid.New(8, 8), Params{})
	if err == nil || !strings.Contains(err.Error(), "tile exploded") {
		t.Fatalf("err = %v, want wrapped worker panic", err)
	}
}
