package engine

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestRunObsSpansPerWorker is the monitor-hook contract with obs
// enabled: every pool worker contributes at least one chunk span, the
// engine track carries one span per iteration, and the counters agree
// with the run result.
func TestRunObsSpansPerWorker(t *testing.T) {
	const workers = 3
	sink := obs.Sink{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(nil)}
	g := grid.New(64, 64)
	g.Set(32, 32, 50000)

	var monitored int
	res, err := Run("tiled-sync", g, Params{
		Workers: workers, Policy: sched.Static, TileH: 8, TileW: 8,
		Obs:         sink,
		OnIteration: func(IterStats) { monitored++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if monitored != res.Iterations {
		t.Fatalf("user monitor hook fired %d times, want %d", monitored, res.Iterations)
	}

	perWorker := map[int]int{}
	engineSpans := 0
	for _, sp := range sink.Tracer.Spans() {
		switch sink.Tracer.ProcessName(sp.Track.PID) {
		case "sched":
			perWorker[sp.Track.TID]++
		case "engine":
			engineSpans++
		}
	}
	if len(perWorker) != workers {
		t.Fatalf("chunk spans cover %d workers, want %d: %v", len(perWorker), workers, perWorker)
	}
	for w, n := range perWorker {
		if n < 1 {
			t.Fatalf("worker %d has no spans", w)
		}
	}
	if engineSpans != res.Iterations {
		t.Fatalf("engine iteration spans = %d, want %d", engineSpans, res.Iterations)
	}

	s := sink.Metrics.Snapshot()
	if s.Counters["engine.runs"] != 1 {
		t.Fatalf("engine.runs = %d, want 1", s.Counters["engine.runs"])
	}
	if s.Counters["engine.iterations"] != int64(res.Iterations) {
		t.Fatalf("engine.iterations = %d, want %d", s.Counters["engine.iterations"], res.Iterations)
	}
	if s.Counters["sched.chunks"] == 0 || s.Counters["sched.regions"] == 0 {
		t.Fatalf("pool counters empty: %+v", s.Counters)
	}
}

// TestDisabledObsRecordPathZeroAlloc pins the disabled-path contract at
// the engine's granularity: the tracing/monitoring calls the variants
// make per task are zero-allocation no-ops when nothing is attached.
func TestDisabledObsRecordPathZeroAlloc(t *testing.T) {
	var rec *trace.Recorder
	p := Params{}
	allocs := testing.AllocsPerRun(1000, func() {
		if p.traced(1) {
			t.Fatal("traced with nil recorder")
		}
		start := rec.Now()
		rec.Record(trace.Event{Iteration: 1, Worker: 0, Tile: 3, Start: start, Cells: 64})
	})
	if allocs != 0 {
		t.Fatalf("disabled record path allocates %.1f per event, want 0", allocs)
	}
}
