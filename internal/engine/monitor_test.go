package engine

import (
	"testing"

	"repro/internal/sandpile"
)

// Tests for the OnIteration monitoring hook (EASYPAP's real-time
// monitoring analog).

func TestOnIterationCalledEveryIteration(t *testing.T) {
	for _, name := range Names() {
		g := sandpile.Uniform(4).Build(24, 24, nil)
		var calls []IterStats
		res, err := Run(name, g, Params{
			TileH: 8, TileW: 8, Workers: 2,
			OnIteration: func(st IterStats) { calls = append(calls, st) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != res.Iterations {
			t.Fatalf("%s: %d callbacks for %d iterations", name, len(calls), res.Iterations)
		}
		for i, st := range calls {
			if st.Iteration != i+1 {
				t.Fatalf("%s: callback %d has iteration %d", name, i, st.Iteration)
			}
		}
		// The final iteration observes stability: zero changes.
		if last := calls[len(calls)-1]; last.Changes != 0 {
			t.Fatalf("%s: final iteration reported %d changes", name, last.Changes)
		}
		// Total changes across callbacks equals Result.Topples.
		var sum uint64
		for _, st := range calls {
			sum += uint64(st.Changes)
		}
		if sum != res.Topples {
			t.Fatalf("%s: callbacks sum to %d, result says %d", name, sum, res.Topples)
		}
	}
}

func TestOnIterationActiveTilesShrinkUnderLaziness(t *testing.T) {
	g := sandpile.Center(2000).Build(96, 96, nil)
	var first, last IterStats
	n := 0
	_, err := Run("lazy-sync", g, Params{
		TileH: 16, TileW: 16, Workers: 2,
		OnIteration: func(st IterStats) {
			if n == 0 {
				first = st
			}
			last = st
			n++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.ActiveTiles != 36 {
		t.Fatalf("first iteration active tiles = %d, want all 36", first.ActiveTiles)
	}
	if last.ActiveTiles >= first.ActiveTiles {
		t.Fatalf("laziness did not shrink the active set: first %d, last %d",
			first.ActiveTiles, last.ActiveTiles)
	}
}

func TestOnIterationUntiledReportsMinusOne(t *testing.T) {
	for _, name := range []string{"seq-sync", "seq-async", "omp-sync"} {
		g := sandpile.Uniform(4).Build(16, 16, nil)
		sawTiles := false
		if _, err := Run(name, g, Params{Workers: 2, OnIteration: func(st IterStats) {
			if st.ActiveTiles != -1 {
				sawTiles = true
			}
		}}); err != nil {
			t.Fatal(err)
		}
		if sawTiles {
			t.Fatalf("%s: untiled variant reported tile counts", name)
		}
	}
}

func TestMonitoredSeqVariantsMatchUnmonitored(t *testing.T) {
	init := sandpile.Random(9).Build(30, 30, nil)
	for _, name := range []string{"seq-sync", "seq-async"} {
		a, b := init.Clone(), init.Clone()
		ra, err := Run(name, a, Params{})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Run(name, b, Params{OnIteration: func(IterStats) {}})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%s: monitoring changed the result", name)
		}
		if ra.Iterations != rb.Iterations || ra.Topples != rb.Topples {
			t.Fatalf("%s: monitoring changed accounting: %v vs %v", name, ra, rb)
		}
	}
}
