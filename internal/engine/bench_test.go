package engine

import (
	"math/rand"
	"testing"

	"repro/internal/sandpile"
	"repro/internal/sched"
)

// Variant benchmarks: the ablation study behind the sandpile
// assignment — what each optimization stage (parallelism, tiling,
// laziness, kernel specialization, multi-wave async) buys on dense
// and sparse workloads.

func benchVariant(b *testing.B, variant string, cfg sandpile.Config, n int, p Params) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := cfg.Build(n, n, rng)
		b.StartTimer()
		if _, err := Run(variant, g, p); err != nil {
			b.Fatal(err)
		}
	}
}

func denseParams() Params {
	return Params{TileH: 32, TileW: 32, Workers: 4, Policy: sched.Dynamic}
}

func BenchmarkDenseSeqSync(b *testing.B) {
	benchVariant(b, "seq-sync", sandpile.Uniform(4), 256, denseParams())
}

func BenchmarkDenseSeqAsync(b *testing.B) {
	benchVariant(b, "seq-async", sandpile.Uniform(4), 256, denseParams())
}

func BenchmarkDenseOmpSync(b *testing.B) {
	benchVariant(b, "omp-sync", sandpile.Uniform(4), 256, denseParams())
}

func BenchmarkDenseTiledSync(b *testing.B) {
	benchVariant(b, "tiled-sync", sandpile.Uniform(4), 256, denseParams())
}

func BenchmarkDenseTiledInner(b *testing.B) {
	benchVariant(b, "tiled-sync-inner", sandpile.Uniform(4), 256, denseParams())
}

func BenchmarkDenseAsyncWaves(b *testing.B) {
	benchVariant(b, "async-waves", sandpile.Uniform(4), 256, denseParams())
}

func BenchmarkSparseEagerTiled(b *testing.B) {
	benchVariant(b, "tiled-sync", sandpile.Sparse(0.001, 2000), 512, denseParams())
}

func BenchmarkSparseLazy(b *testing.B) {
	benchVariant(b, "lazy-sync", sandpile.Sparse(0.001, 2000), 512, denseParams())
}

func BenchmarkSparseLazyAsyncWaves(b *testing.B) {
	benchVariant(b, "lazy-async-waves", sandpile.Sparse(0.001, 2000), 512, denseParams())
}

// BenchmarkSchedulePolicies compares the four loop schedules on the
// imbalanced sparse workload (assignment 1's experiment).
func BenchmarkSchedulePolicies(b *testing.B) {
	for _, policy := range sched.Policies {
		b.Run(policy.String(), func(b *testing.B) {
			p := denseParams()
			p.Policy = policy
			benchVariant(b, "omp-sync", sandpile.Sparse(0.002, 1000), 512, p)
		})
	}
}

// BenchmarkTileSizes sweeps the tile edge on the lazy variant
// (assignment 2's experiment, Fig 3's parameter).
func BenchmarkTileSizes(b *testing.B) {
	for _, tile := range []int{8, 16, 32, 64, 128} {
		b.Run(byteSize(tile), func(b *testing.B) {
			p := denseParams()
			p.TileH, p.TileW = tile, tile
			benchVariant(b, "lazy-sync", sandpile.Sparse(0.001, 2000), 512, p)
		})
	}
}

func byteSize(tile int) string {
	switch tile {
	case 8:
		return "8x8"
	case 16:
		return "16x16"
	case 32:
		return "32x32"
	case 64:
		return "64x64"
	default:
		return "128x128"
	}
}
