package engine

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/sandpile"
)

// Tests for the IterStats.Grid snapshot used to capture animations.

func TestSnapshotGridReflectsProgress(t *testing.T) {
	for _, name := range Names() {
		init := sandpile.Center(600).Build(24, 24, nil)
		var snapshots []*grid.Grid
		g := init.Clone()
		_, err := Run(name, g, Params{
			TileH: 8, TileW: 8, Workers: 2,
			OnIteration: func(st IterStats) {
				if st.Grid == nil {
					t.Fatalf("%s: nil snapshot grid", name)
				}
				snapshots = append(snapshots, st.Grid.Clone())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(snapshots) < 2 {
			t.Fatalf("%s: only %d snapshots", name, len(snapshots))
		}
		// The final snapshot is the stable result.
		last := snapshots[len(snapshots)-1]
		if !last.Equal(g) {
			t.Fatalf("%s: final snapshot differs from result", name)
		}
		// Earlier snapshots show the evolution: the first snapshot of
		// an unstable start must differ from the final state.
		if snapshots[0].Equal(last) {
			t.Fatalf("%s: evolution invisible in snapshots", name)
		}
		// Mass conservation holds in every intermediate snapshot (the
		// center pile never reaches the border on this grid).
		for i, s := range snapshots {
			if s.Sum() != 600 {
				t.Fatalf("%s: snapshot %d has %d grains, want 600", name, i, s.Sum())
			}
		}
	}
}

func TestSnapshotCloneSurvivesEngineReuse(t *testing.T) {
	// Snapshots must be Clone()d by the consumer; verify that cloning
	// during the callback yields stable, independent grids even for
	// double-buffered variants that recycle buffers.
	g := sandpile.Uniform(5).Build(16, 16, nil)
	var first *grid.Grid
	_, err := Run("tiled-sync", g, Params{
		TileH: 4, TileW: 4, Workers: 2,
		OnIteration: func(st IterStats) {
			if first == nil {
				first = st.Grid.Clone()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// After one synchronous step of uniform-5, interior cells are 5
	// again (1 kept + 4 neighbors donating 1 each) but the corner
	// loses two donations to the sink: 5%4 + 2*1 = 3.
	if got := first.Get(0, 0); got != 3 {
		t.Fatalf("first snapshot corner = %d, want 3", got)
	}
	if first.Equal(g) {
		t.Fatal("first snapshot equals the final state; buffer aliasing suspected")
	}
}
