package engine

// checkpoint.go wires the durable checkpoint subsystem into the
// engine loop. Snapshots are taken inside the OnIteration hook (the
// same piggyback Run uses for per-iteration tracer spans), so every
// variant checkpoints from its monitored loop at iteration
// boundaries, where the post-iteration grid is globally consistent.
//
// A snapshot stores the post-iteration interior cells plus the
// cumulative iteration/topple/absorbed totals, and — for the lazy
// variants — the iteration's active worklist. Resume restores the
// cells and re-seeds the frontier with the saved worklist PLUS each
// tile's 4-neighborhood: that set is a provable superset of the true
// next frontier (changed tiles ∪ their edge-woken neighbors), and
// seeding a superset is sound — an extra tile is already stable under
// its inputs, computes zero changes, wakes nobody, and leaves the
// worklist after one iteration, so the resumed trajectory (totals,
// stop iteration, final cells) is identical to the uninterrupted one.
// Snapshots are variant-portable: a frontier recorded by one tiling
// (or an eager variant's snapshot with no frontier at all) degrades
// to seed-everything, which is always correct.
//
// Determinism of the iteration count is preserved by never saving on
// an iteration with zero changes (the run is ending — a resume from
// such a snapshot would append one extra fixed-point iteration) nor
// on the iteration that exhausts MaxIters.

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/grid"
)

// enginePayload tags engine snapshots inside the ckpt frame.
const enginePayload uint32 = 1

// ckptState carries the totals already banked by previous run
// segments, plus the first save error (surfaced after the run).
type ckptState struct {
	iters    int
	topples  uint64
	absorbed uint64
	err      error
}

// setupCheckpoint restores the newest snapshot into g (when the
// Checkpointer resumes) and installs the cadence-save hook in front
// of p.OnIteration. Installing the hook makes every variant take its
// monitored loop, exactly like the tracer piggyback.
func setupCheckpoint(p *Params, g *grid.Grid) (*ckptState, error) {
	d := p.withDefaults() // resolved tile geometry and iteration budget
	st := &ckptState{}
	epoch, payload, ok, err := p.Ckpt.Load()
	if err != nil {
		return nil, err
	}
	if ok {
		if err := st.restore(payload, epoch, g, p, d); err != nil {
			return nil, err
		}
		// The remaining budget keeps a resumed run on the same global
		// iteration cap as an uninterrupted one.
		p.MaxIters = d.MaxIters - st.iters
		if p.MaxIters < 1 {
			p.MaxIters = 1
		}
	}

	base := g.Sum() // segment-start grains, after any restore
	user := p.OnIteration
	prior := st.iters
	cum := st.topples
	ck := p.Ckpt
	tileH, tileW := d.TileH, d.TileW
	maxIters := d.MaxIters
	p.OnIteration = func(is IterStats) {
		cum += uint64(is.Changes)
		global := int64(prior) + int64(is.Iteration)
		if is.Changes > 0 && int(global) < maxIters && ck.Due(global) {
			absorbed := st.absorbed + (base - is.Grid.Sum())
			var fr []int32
			if is.frontier != nil {
				fr = is.frontier()
			}
			pl := encodeEngineSnapshot(global, cum, absorbed, tileH, tileW, is.Grid, fr)
			if err := ck.Save(uint64(global), pl); err != nil && st.err == nil {
				st.err = err
			}
		}
		if user != nil {
			user(is)
		}
	}
	return st, nil
}

// encodeEngineSnapshot serializes one post-iteration state.
func encodeEngineSnapshot(iters int64, topples, absorbed uint64, tileH, tileW int, g *grid.Grid, frontier []int32) []byte {
	var e ckpt.Enc
	e.U32(enginePayload)
	e.U64(uint64(iters))
	e.U64(topples)
	e.U64(absorbed)
	e.U32(uint32(tileH))
	e.U32(uint32(tileW))
	e.U32(uint32(g.H()))
	e.U32(uint32(g.W()))
	for y := 0; y < g.H(); y++ {
		for _, v := range g.Row(y) {
			e.U32(v)
		}
	}
	if len(frontier) > 0 {
		e.U8(1)
		e.I32s(frontier)
	} else {
		e.U8(0)
	}
	return e.Bytes()
}

// restore installs a decoded snapshot: interior cells into g, totals
// into st, and — when the snapshot's tile geometry matches this run's
// — the saved worklist into p.resumeFrontier for the lazy variants.
func (st *ckptState) restore(payload []byte, epoch uint64, g *grid.Grid, p *Params, d Params) error {
	dec := ckpt.NewDec(payload)
	if tag := dec.U32(); tag != enginePayload {
		return fmt.Errorf("engine: snapshot has payload tag %d, want %d", tag, enginePayload)
	}
	iters := dec.U64()
	st.topples = dec.U64()
	st.absorbed = dec.U64()
	tileH := int(dec.U32())
	tileW := int(dec.U32())
	h := int(dec.U32())
	w := int(dec.U32())
	if h != g.H() || w != g.W() {
		return fmt.Errorf("engine: snapshot is %dx%d but the run grid is %dx%d (resume needs the same -size)",
			h, w, g.H(), g.W())
	}
	for y := 0; y < h; y++ {
		row := g.Row(y)
		for x := 0; x < w; x++ {
			row[x] = dec.U32()
		}
	}
	var frontier []int32
	if dec.U8() == 1 {
		frontier = dec.I32s()
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("engine: snapshot epoch %d: %w", epoch, err)
	}
	if iters != epoch {
		return fmt.Errorf("engine: snapshot epoch %d holds iteration %d", epoch, iters)
	}
	st.iters = int(iters)
	g.ClearHalo()
	if tileH == d.TileH && tileW == d.TileW {
		p.resumeFrontier = frontier
	}
	return nil
}

// seedResumeFrontier seeds fr with the saved worklist plus each
// tile's 4-neighborhood (the superset argument above). It reports
// false — leaving fr untouched, caller falls back to SeedAll — when
// there is no saved worklist or it does not fit this tiling.
func seedResumeFrontier(fr *grid.Frontier, tl *grid.Tiling, ids []int32, laneOf func(id int) int) bool {
	if len(ids) == 0 {
		return false
	}
	n := tl.NumTiles()
	for _, id := range ids {
		if id < 0 || int(id) >= n {
			return false
		}
	}
	fr.Begin()
	for _, id := range ids {
		fr.Add(id, laneOf(int(id)))
		for _, d := range grid.Dirs {
			if nb := tl.Neighbor(int(id), d); nb >= 0 {
				fr.Add(int32(nb), laneOf(nb))
			}
		}
	}
	fr.Flip()
	return true
}
