package engine

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/sandpile"
	"repro/internal/sched"
)

// frontierVariants are the engines that run on the compacted
// active-tile worklist instead of sweeping the full grid.
var frontierVariants = []string{"lazy-sync", "lazy-sync-inner", "lazy-async-waves"}

// TestFrontierVariantsRandomizedOracle is the satellite oracle sweep:
// every frontier variant must reach the sandpile reference's exact
// fixed point on a batch of random grids spanning sparse and dense
// regimes, random shapes, tile sizes, worker counts, and policies.
// Dhar's theorem guarantees a unique fixed point regardless of topple
// order, so any divergence is a frontier bookkeeping bug (a tile
// dropped from the worklist while still unstable, or a stale buffer
// surviving a wake-up).
func TestFrontierVariantsRandomizedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	const trials = 24
	for trial := 0; trial < trials; trial++ {
		var cfg sandpile.Config
		switch trial % 4 {
		case 0: // very sparse: the frontier stays tiny
			cfg = sandpile.Sparse(0.002+rng.Float64()*0.01, 100+uint32(rng.Intn(300)))
		case 1: // moderately sparse
			cfg = sandpile.Sparse(0.05, 50+uint32(rng.Intn(100)))
		case 2: // dense: every tile active for most of the run
			cfg = sandpile.Random(8 + uint32(rng.Intn(8)))
		case 3: // dense near-critical
			cfg = sandpile.Uniform(4 + uint32(rng.Intn(3)))
		}
		h := 20 + rng.Intn(45)
		w := 20 + rng.Intn(45)
		init := cfg.Build(h, w, rng)
		want := oracle(init)
		p := Params{
			TileH:   4 + rng.Intn(12),
			TileW:   4 + rng.Intn(12),
			Workers: 1 + rng.Intn(4),
			Policy:  sched.Policies[rng.Intn(len(sched.Policies))],
		}
		for _, name := range frontierVariants {
			g := init.Clone()
			res, err := Run(name, g, p)
			if err != nil {
				t.Fatalf("trial %d %s/%s: %v", trial, cfg.Name, name, err)
			}
			if !sandpile.Stable(g) {
				t.Fatalf("trial %d %s/%s (%dx%d tile %dx%d workers %d %v): not stable after %v",
					trial, cfg.Name, name, h, w, p.TileH, p.TileW, p.Workers, p.Policy, res)
			}
			if !g.Equal(want) {
				t.Fatalf("trial %d %s/%s (%dx%d tile %dx%d workers %d %v): fixed point differs: %v",
					trial, cfg.Name, name, h, w, p.TileH, p.TileW, p.Workers, p.Policy,
					g.Diff(want, 5))
			}
		}
	}
}

// TestFrontierMetricsPopulated checks the obs wiring: a lazy run with a
// metrics registry attached reports the frontier gauge and the skipped
// counter, and on a sparse workload the engines must actually have
// skipped work (that is the entire point of the worklist).
func TestFrontierMetricsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range frontierVariants {
		sink := obs.Sink{Metrics: obs.NewRegistry()}
		g := sandpile.Sparse(0.01, 300).Build(96, 96, rng)
		res, err := Run(name, g, Params{
			TileH: 8, TileW: 8, Workers: 2, Policy: sched.Dynamic, Obs: sink,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := sink.Metrics.Snapshot()
		if _, ok := s.Gauges["engine.frontier_tiles"]; !ok {
			t.Fatalf("%s: engine.frontier_tiles gauge missing: %+v", name, s.Gauges)
		}
		skipped := s.Counters["engine.tiles_skipped"]
		if skipped <= 0 {
			t.Fatalf("%s: engine.tiles_skipped = %d, want > 0 on a sparse grid (%v)",
				name, skipped, res)
		}
		// The final iteration observes no changes on a now-empty-ish
		// frontier; the gauge must have been left at the last active
		// count, which is at most the tile count.
		if fin := s.Gauges["engine.frontier_tiles"]; fin < 0 || fin > 12*12 {
			t.Fatalf("%s: engine.frontier_tiles final value %v out of range", name, fin)
		}
	}
}
