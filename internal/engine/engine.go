// Package engine is the EASYPAP-analog execution harness for the
// Abelian-sandpile assignment: it owns the iterate-until-stable loop,
// a registry of named kernel variants (sequential, OpenMP-style
// parallel, tiled, lazy, multi-wave asynchronous, and the specialized
// inner-kernel variant), per-iteration monitoring, and optional task
// tracing.
//
// The registry mirrors EASYPAP's "add a few lines, recompile, and the
// new variant is available on the command line" workflow: variants are
// self-registering and every CLI/bench selects them by name.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/ckpt"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sandpile"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Params configures a run.
type Params struct {
	// TileH, TileW set the tile extent for tiled variants; 0 means 32.
	TileH, TileW int
	// Workers is the worker-team size for parallel variants; 0 means
	// GOMAXPROCS.
	Workers int
	// Policy is the loop schedule for parallel variants.
	Policy sched.Policy
	// ChunkSize is the schedule chunk; 0 means 1.
	ChunkSize int
	// MaxIters aborts runaway runs; 0 means sandpile.MaxIterations.
	MaxIters int
	// Recorder, when non-nil, receives one event per executed tile
	// task for iterations in [TraceFrom, TraceTo]; TraceTo == 0 means
	// "to the end".
	Recorder           *trace.Recorder
	TraceFrom, TraceTo int
	// OnIteration, when non-nil, is called after every iteration with
	// live progress — the analog of EASYPAP's real-time monitoring
	// window. It runs on the coordinating goroutine; keep it cheap.
	OnIteration func(IterStats)
	// Obs attaches the observability layer: the worker pool of parallel
	// variants reports per-worker chunk spans and sched.* counters,
	// Run() adds engine.* counters and per-iteration spans on the
	// "engine" track. The zero Sink disables it at no cost.
	Obs obs.Sink
	// Ckpt enables durable checkpoint/restart (see checkpoint.go):
	// Run saves a snapshot whenever the Checkpointer's cadence fires
	// and, when the Checkpointer resumes, restores the newest valid
	// snapshot before executing — a resumed run reaches the byte-
	// identical fixed point, totals included. nil disables.
	Ckpt *ckpt.Checkpointer

	// resumeFrontier is the worklist restored from a snapshot, seeded
	// (with its 4-neighborhood) into the lazy variants' frontier in
	// place of SeedAll. Set only by setupCheckpoint.
	resumeFrontier []int32

	// ctx carries cancellation into the variant loops: parallel
	// variants stop claiming chunks and sequential variants break
	// between iterations once it fires. Set by RunContext; nil means
	// context.Background() (never fires, zero cost).
	ctx context.Context
}

// IterStats is the per-iteration progress reported to OnIteration.
type IterStats struct {
	// Iteration is 1-based.
	Iteration int
	// Changes is the iteration's changed-cell count (synchronous
	// variants) or toppling count (asynchronous variants).
	Changes int
	// ActiveTiles is the number of tiles actually computed this
	// iteration; -1 for untiled variants.
	ActiveTiles int
	// Grid is the state just produced by this iteration. It is valid
	// only during the callback (the engine may reuse the buffer);
	// Clone it to retain a snapshot — this is how animations are
	// captured.
	Grid *grid.Grid

	// frontier lazily yields the worklist this iteration computed
	// (lazy variants only; nil otherwise). Called at most once, only
	// when a checkpoint is actually saved.
	frontier func() []int32
}

func (p Params) withDefaults() Params {
	if p.ctx == nil {
		p.ctx = context.Background()
	}
	if p.TileH <= 0 {
		p.TileH = 32
	}
	if p.TileW <= 0 {
		p.TileW = 32
	}
	if p.MaxIters <= 0 {
		p.MaxIters = sandpile.MaxIterations
	}
	if p.ChunkSize <= 0 {
		p.ChunkSize = 1
	}
	return p
}

func (p Params) traced(iter int) bool {
	if p.Recorder == nil {
		return false
	}
	if iter < p.TraceFrom {
		return false
	}
	return p.TraceTo == 0 || iter <= p.TraceTo
}

// Variant is a named strategy for stabilizing a sandpile in place.
type Variant struct {
	Name        string
	Description string
	// Parallel reports whether the variant uses a worker team.
	Parallel bool
	Run      func(g *grid.Grid, p Params) sandpile.Result
}

var registry = map[string]Variant{}

// Register adds a variant; duplicate names panic at init time, like a
// redefined kernel would fail to link in EASYPAP.
func Register(v Variant) {
	if _, dup := registry[v.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate variant %q", v.Name))
	}
	registry[v.Name] = v
}

// Lookup fetches a variant by name.
func Lookup(name string) (Variant, error) {
	v, ok := registry[name]
	if !ok {
		return Variant{}, fmt.Errorf("engine: unknown variant %q (have %v)", name, Names())
	}
	return v, nil
}

// Names returns all registered variant names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run looks up and executes a variant on g, which is stabilized in
// place.
func Run(name string, g *grid.Grid, p Params) (sandpile.Result, error) {
	return RunContext(context.Background(), name, g, p)
}

// RunContext is Run with cancellation: once ctx fires, parallel
// variants stop claiming chunks (in-flight tiles finish — the grid is
// never left mid-kernel), sequential variants break between
// iterations, and ctx.Err() is returned alongside the partial result.
// A background context costs nothing on the hot loops.
func RunContext(ctx context.Context, name string, g *grid.Grid, p Params) (sandpile.Result, error) {
	v, err := Lookup(name)
	if err != nil {
		return sandpile.Result{}, err
	}
	p.ctx = ctx
	var cs *ckptState
	if p.Ckpt != nil {
		// Install the checkpoint hook before the tracer wrap so
		// iteration spans include the save cost (the store also emits
		// its own ckpt.save spans).
		cs, err = setupCheckpoint(&p, g)
		if err != nil {
			return sandpile.Result{}, fmt.Errorf("engine: checkpoint: %w", err)
		}
	}
	if tr := p.Obs.Tracer; tr != nil {
		// Piggyback per-iteration spans on the monitor hook: wrapping
		// OnIteration switches every variant to its monitored loop, so
		// each iteration lands as one span on the engine track.
		track := tr.Track("engine", 0, name)
		last := tr.Now()
		user := p.OnIteration
		p.OnIteration = func(st IterStats) {
			now := tr.Now()
			tr.Span(track, "iteration", last, now-last,
				obs.Arg{Key: "iter", Value: int64(st.Iteration)},
				obs.Arg{Key: "changes", Value: int64(st.Changes)},
				obs.Arg{Key: "active_tiles", Value: int64(st.ActiveTiles)})
			last = now
			if user != nil {
				user(st)
			}
		}
	}
	if pr := p.Obs.Progress; pr != nil {
		// Same trick for live progress: the wrap switches variants to
		// their monitored loops, and every iteration publishes into the
		// /progress stage plus a live gauge (a counter would double-book
		// against the end-of-run engine.iterations total).
		gIter := p.Obs.Metrics.Gauge("engine.iteration")
		user := p.OnIteration
		p.OnIteration = func(st IterStats) {
			gIter.Set(float64(st.Iteration))
			pr.Update("engine",
				obs.F("iteration", float64(st.Iteration)),
				obs.F("changes", float64(st.Changes)),
				obs.F("active_tiles", float64(st.ActiveTiles)))
			if user != nil {
				user(st)
			}
		}
	}
	res, err := runGuarded(name, v, g, p)
	if err != nil {
		return sandpile.Result{}, err
	}
	if cs != nil {
		res.Iterations += cs.iters
		res.Topples += cs.topples
		res.Absorbed += cs.absorbed
		if cs.err != nil {
			return res, fmt.Errorf("engine: checkpoint save: %w", cs.err)
		}
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if m := p.Obs.Metrics; m != nil {
		m.Counter("engine.runs").Inc()
		m.Counter("engine.iterations").Add(int64(res.Iterations))
		m.Counter("engine.topples").Add(int64(res.Topples))
	}
	return res, nil
}

// runGuarded executes the variant, converting a panic — including a
// worker-body panic that sched.Pool.Run propagated to the caller —
// into an error instead of unwinding through the whole program. The
// grid is left in an unspecified intermediate state on failure.
func runGuarded(name string, v Variant, g *grid.Grid, p Params) (res sandpile.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: variant %q panicked: %v", name, r)
		}
	}()
	return v.Run(g, p), nil
}

func init() {
	Register(Variant{
		Name:        "seq-sync",
		Description: "sequential synchronous steps with an auxiliary array (Fig 2 top)",
		Run: func(g *grid.Grid, p Params) sandpile.Result {
			if p.OnIteration == nil && !cancellable(p.ctx) {
				return sandpile.StabilizeSyncSeq(g)
			}
			return runSeqSyncMonitored(g, p)
		},
	})
	Register(Variant{
		Name:        "seq-async",
		Description: "sequential in-place asynchronous sweeps (Fig 2 bottom); the oracle",
		Run: func(g *grid.Grid, p Params) sandpile.Result {
			if p.OnIteration == nil && !cancellable(p.ctx) {
				return sandpile.StabilizeAsyncSeq(g)
			}
			return runSeqAsyncMonitored(g, p)
		},
	})
	Register(Variant{
		Name:        "omp-sync",
		Description: "row-parallel synchronous steps under the configured schedule (assignment 1)",
		Parallel:    true,
		Run:         runOmpSync,
	})
	Register(Variant{
		Name:        "tiled-sync",
		Description: "tile-parallel synchronous steps for cache reuse (assignment 2)",
		Parallel:    true,
		Run:         makeTiledEager(false),
	})
	Register(Variant{
		Name:        "lazy-sync",
		Description: "frontier-scheduled synchronous steps: only tiles in the active worklist compute (assignment 2)",
		Parallel:    true,
		Run:         makeLazyFrontier(false),
	})
	Register(Variant{
		Name:        "tiled-sync-inner",
		Description: "tiled-sync with the specialized branch-free kernel on inner tiles (assignment 3)",
		Parallel:    true,
		Run:         makeTiledEager(true),
	})
	Register(Variant{
		Name:        "lazy-sync-inner",
		Description: "lazy-sync with the specialized inner-tile kernel (assignments 2+3)",
		Parallel:    true,
		Run:         makeLazyFrontier(true),
	})
	Register(Variant{
		Name:        "async-waves",
		Description: "in-place asynchronous tiles in four checkerboard waves (race-free multi-wave scheduling)",
		Parallel:    true,
		Run:         runAsyncWavesEager,
	})
	Register(Variant{
		Name:        "lazy-async-waves",
		Description: "async-waves over per-wave frontier worklists: quiescent neighborhoods are never scheduled",
		Parallel:    true,
		Run:         runAsyncWavesFrontier,
	})
}

// cancellable reports whether ctx can ever fire (nil and Background
// contexts cannot) — it gates the seq variants' switch from the
// direct stabilize kernels to their per-iteration monitored loops.
func cancellable(ctx context.Context) bool {
	return ctx != nil && ctx.Done() != nil
}

// runSeqSyncMonitored is the seq-sync loop with per-iteration
// reporting.
func runSeqSyncMonitored(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	before := g.Sum()
	next := grid.New(g.H(), g.W())
	cur := g
	var res sandpile.Result
	for {
		res.Iterations++
		ch := sandpile.SyncStep(cur, next)
		res.Topples += uint64(ch)
		if p.OnIteration != nil {
			p.OnIteration(IterStats{Iteration: res.Iterations, Changes: ch, ActiveTiles: -1, Grid: next})
		}
		cur, next = next, cur
		if ch == 0 || res.Iterations >= p.MaxIters || p.ctx.Err() != nil {
			break
		}
	}
	if cur != g {
		g.CopyFrom(cur)
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// runSeqAsyncMonitored is the seq-async loop with per-iteration
// reporting.
func runSeqAsyncMonitored(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	before := g.Sum()
	var res sandpile.Result
	for {
		res.Iterations++
		t := sandpile.AsyncRegion(g, 0, g.H(), 0, g.W())
		res.Topples += uint64(t)
		if p.OnIteration != nil {
			p.OnIteration(IterStats{Iteration: res.Iterations, Changes: t, ActiveTiles: -1, Grid: g})
		}
		if t == 0 || res.Iterations >= p.MaxIters || p.ctx.Err() != nil {
			break
		}
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// newVariantPool builds the worker team a parallel variant schedules
// its iterations over, from the run's Params.
func newVariantPool(p Params) *sched.Pool {
	return sched.New(
		sched.WithWorkers(p.Workers),
		sched.WithPolicy(p.Policy),
		sched.WithChunkSize(p.ChunkSize),
		sched.WithObs(p.Obs),
	)
}

// changesStride spaces per-worker change accumulators one cache line
// apart (8 ints = 64 bytes), the same trick sched.Pool uses for its
// busy slots: adjacent workers bouncing one line between cores would
// otherwise serialize the reduction.
const changesStride = 8

// runOmpSync is the first assignment's variant: a plain parallel-for
// over rows, double-buffered, with a barrier per step — the direct
// analog of `#pragma omp parallel for schedule(...)` around the y
// loop.
func runOmpSync(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	pool := newVariantPool(p)
	defer pool.Close()

	before := g.Sum()
	next := grid.New(g.H(), g.W())
	cur := g
	var res sandpile.Result
	changes := make([]int, pool.Workers()*changesStride)
	var c, n *grid.Grid
	body := func(w, lo, hi int) {
		ch := 0
		for y := lo; y < hi; y++ {
			ch += sandpile.SyncRow(c, n, y, 0, c.W())
		}
		changes[w*changesStride] += ch
	}
	for {
		res.Iterations++
		for w := 0; w < pool.Workers(); w++ {
			changes[w*changesStride] = 0
		}
		c, n = cur, next
		if pool.RunContext(p.ctx, g.H(), body) != nil {
			break
		}
		total := 0
		for w := 0; w < pool.Workers(); w++ {
			total += changes[w*changesStride]
		}
		res.Topples += uint64(total)
		if p.OnIteration != nil {
			p.OnIteration(IterStats{Iteration: res.Iterations, Changes: total, ActiveTiles: -1, Grid: next})
		}
		cur, next = next, cur
		if total == 0 {
			break
		}
		if res.Iterations >= p.MaxIters {
			break
		}
	}
	if cur != g {
		g.CopyFrom(cur)
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// tileTask computes one tile of a synchronous step, choosing the
// specialized kernel for inner tiles when enabled, and returns the
// number of changed cells.
func tileTask(cur, next *grid.Grid, t grid.Tile, useInner bool) int {
	if useInner && t.Inner(cur) {
		return sandpile.SyncRegionInner(cur, next, t.Y, t.Y+t.H, t.X, t.X+t.W)
	}
	return sandpile.SyncRegion(cur, next, t.Y, t.Y+t.H, t.X, t.X+t.W)
}

// frontierObs resolves the frontier instruments from a sink. Both are
// nil-safe, so the per-iteration updates cost nothing when obs is off.
func frontierObs(p Params) (*obs.Gauge, *obs.Counter) {
	m := p.Obs.Metrics
	if m == nil {
		return nil, nil
	}
	return m.Gauge("engine.frontier_tiles"), m.Counter("engine.tiles_skipped")
}

func makeTiledEager(inner bool) func(*grid.Grid, Params) sandpile.Result {
	return func(g *grid.Grid, p Params) sandpile.Result {
		p = p.withDefaults()
		tl := grid.NewTiling(g.H(), g.W(), p.TileH, p.TileW)
		pool := newVariantPool(p)
		defer pool.Close()

		before := g.Sum()
		next := grid.New(g.H(), g.W())
		cur := g
		nTiles := tl.NumTiles()
		tileChanges := make([]int, nTiles)

		var c, n *grid.Grid
		var doTrace bool
		var iter int
		body := func(w, lo, hi int) {
			for id := lo; id < hi; id++ {
				t := tl.Tile(id)
				var start time.Duration
				if doTrace {
					start = p.Recorder.Now()
				}
				tileChanges[id] = tileTask(c, n, t, inner)
				if doTrace {
					p.Recorder.Record(trace.Event{
						Iteration: iter, Worker: w, Tile: id,
						Start: start, Duration: p.Recorder.Now() - start,
						Cells: t.H * t.W,
					})
				}
			}
		}

		var res sandpile.Result
		for {
			res.Iterations++
			iter = res.Iterations
			doTrace = p.traced(iter)
			c, n = cur, next
			if pool.RunContext(p.ctx, nTiles, body) != nil {
				break
			}
			total := 0
			for _, ch := range tileChanges {
				total += ch
			}
			res.Topples += uint64(total)
			if p.OnIteration != nil {
				p.OnIteration(IterStats{Iteration: iter, Changes: total, ActiveTiles: nTiles, Grid: next})
			}
			cur, next = next, cur
			if total == 0 || res.Iterations >= p.MaxIters {
				break
			}
		}
		if cur != g {
			g.CopyFrom(cur)
		}
		g.ClearHalo()
		res.Absorbed = before - g.Sum()
		return res
	}
}

// makeLazyFrontier builds the worklist-driven lazy synchronous
// variants: each iteration schedules only the compacted frontier of
// active tiles via Pool.RunIndexed, and the next frontier is rebuilt
// from the tiles that changed — every per-iteration cost (scheduling,
// change reduction, wake-up) is O(frontier), not O(grid), and nothing
// in the loop allocates.
//
// Quiescent tiles are neither computed nor copied. Skipping the old
// copyTile pass is sound because of an invariant of the lazy wake-up
// rule: a tile leaves the frontier only after an iteration in which it
// was computed and did not change, at which point the kernel has
// written identical cells into both buffers — so both buffers hold its
// latest state for as long as it stays quiescent, and whichever buffer
// is "cur" when it re-activates (or when the run ends) is already
// fresh. A tile that did change is always re-scheduled the very next
// iteration, overwriting the stale copy in the write buffer before any
// kernel can read it.
//
// Wake-ups are edge-gated: the synchronous kernel reads a neighboring
// tile's cells only through value/Threshold, so a changed tile wakes a
// neighbor only when a cell on the facing edge changed its quotient
// (SyncEdgeMask). A neighbor left asleep keeps provably identical
// inputs — its own cells are untouched and every facing edge's
// contribution is unchanged since it last computed — so its output
// could not differ. This is what stops the avalanche front from
// fruitlessly recomputing every quiescent tile bordering a toppling
// one, iteration after iteration, until the wave actually reaches the
// shared edge.
func makeLazyFrontier(inner bool) func(*grid.Grid, Params) sandpile.Result {
	return func(g *grid.Grid, p Params) sandpile.Result {
		p = p.withDefaults()
		tl := grid.NewTiling(g.H(), g.W(), p.TileH, p.TileW)
		pool := newVariantPool(p)
		defer pool.Close()

		before := g.Sum()
		next := grid.New(g.H(), g.W())
		cur := g
		nTiles := tl.NumTiles()
		tileChanges := make([]int, nTiles)
		tileEdges := make([]uint8, nTiles)
		fr := grid.NewFrontier(nTiles, 1)
		if seedResumeFrontier(fr, tl, p.resumeFrontier, func(int) int { return 0 }) {
			// Resuming on a partial frontier: tiles outside it will
			// never be computed into `next`, so restore the two-buffer
			// coherence invariant up front by cloning the restored
			// state into the write buffer.
			next.CopyFrom(g)
		} else {
			fr.SeedAll(nil)
		}
		gFrontier, cSkipped := frontierObs(p)

		var c, n *grid.Grid
		var doTrace bool
		var iter int
		body := func(w int, ids []int32) {
			for _, id32 := range ids {
				id := int(id32)
				t := tl.Tile(id)
				var start time.Duration
				if doTrace {
					start = p.Recorder.Now()
				}
				ch := tileTask(c, n, t, inner)
				tileChanges[id] = ch
				if ch > 0 {
					tileEdges[id] = sandpile.SyncEdgeMask(c, n, t.Y, t.Y+t.H, t.X, t.X+t.W)
				}
				if doTrace {
					p.Recorder.Record(trace.Event{
						Iteration: iter, Worker: w, Tile: id,
						Start: start, Duration: p.Recorder.Now() - start,
						Cells: t.H * t.W,
					})
				}
			}
		}

		var res sandpile.Result
		for {
			res.Iterations++
			iter = res.Iterations
			doTrace = p.traced(iter)
			c, n = cur, next
			active := fr.Active()
			gFrontier.Set(float64(len(active)))
			cSkipped.Add(int64(nTiles - len(active)))
			if pool.RunIndexedContext(p.ctx, active, body) != nil {
				break
			}
			total := 0
			for _, id := range active {
				total += tileChanges[id]
			}
			res.Topples += uint64(total)
			if p.OnIteration != nil {
				p.OnIteration(IterStats{Iteration: iter, Changes: total, ActiveTiles: len(active), Grid: next,
					frontier: func() []int32 { return active }})
			}
			cur, next = next, cur
			if total == 0 || res.Iterations >= p.MaxIters {
				break
			}
			// A changed tile reruns; a neighbor reruns only if the
			// facing edge changed its outward contribution.
			fr.Begin()
			for _, id := range active {
				if tileChanges[id] == 0 {
					continue
				}
				fr.Add(id, 0)
				for _, d := range grid.Dirs {
					if tileEdges[id]&d != 0 {
						if nbID := tl.Neighbor(int(id), d); nbID >= 0 {
							fr.Add(int32(nbID), 0)
						}
					}
				}
			}
			fr.Flip()
		}
		if cur != g {
			g.CopyFrom(cur)
		}
		g.ClearHalo()
		res.Absorbed = before - g.Sum()
		return res
	}
}

// checkWaveTiles validates the wave variants' minimum tile extent:
// same-wave tiles write one cell past their borders, and a ≥2-cell gap
// tile between them keeps those fringes disjoint.
func checkWaveTiles(p Params) {
	if p.TileH < 2 || p.TileW < 2 {
		panic("engine: async wave variants require tiles of at least 2x2 cells")
	}
}

func runAsyncWavesEager(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	checkWaveTiles(p)
	tl := grid.NewTiling(g.H(), g.W(), p.TileH, p.TileW)
	pool := newVariantPool(p)
	defer pool.Close()

	before := g.Sum()
	waves := tl.Waves()
	nTiles := tl.NumTiles()
	topples := make([]int, nTiles)

	var wv []int
	var doTrace bool
	var iter int
	body := func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			id := wv[k]
			t := tl.Tile(id)
			var start time.Duration
			if doTrace {
				start = p.Recorder.Now()
			}
			topples[id] = sandpile.AsyncRegion(g, t.Y, t.Y+t.H, t.X, t.X+t.W)
			if doTrace {
				p.Recorder.Record(trace.Event{
					Iteration: iter, Worker: w, Tile: id,
					Start: start, Duration: p.Recorder.Now() - start,
					Cells: t.H * t.W,
				})
			}
		}
	}

	var res sandpile.Result
	for {
		res.Iterations++
		iter = res.Iterations
		doTrace = p.traced(iter)
		cancelled := false
		for _, wave := range waves {
			if len(wave) == 0 {
				continue
			}
			wv = wave
			if pool.RunContext(p.ctx, len(wv), body) != nil {
				cancelled = true
				break
			}
		}
		if cancelled {
			break
		}
		total := 0
		for _, tp := range topples {
			total += tp
		}
		res.Topples += uint64(total)
		if p.OnIteration != nil {
			p.OnIteration(IterStats{Iteration: iter, Changes: total, ActiveTiles: nTiles, Grid: g})
		}
		if total == 0 || res.Iterations >= p.MaxIters {
			break
		}
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// facingUnstable reports whether neighbor tile t, lying in direction d
// from a toppled tile, has an unstable cell on the edge line facing
// the toppler. Asynchronous topples push grains only into directly
// adjacent cells, so this line is the only place an asleep neighbor
// can have been destabilized from that side.
func facingUnstable(g *grid.Grid, t grid.Tile, d uint8) bool {
	switch d {
	case grid.DirUp: // neighbor above: its bottom row faces us
		return sandpile.RegionUnstable(g, t.Y+t.H-1, t.Y+t.H, t.X, t.X+t.W)
	case grid.DirDown: // neighbor below: its top row
		return sandpile.RegionUnstable(g, t.Y, t.Y+1, t.X, t.X+t.W)
	case grid.DirLeft: // neighbor left: its right column
		return sandpile.RegionUnstable(g, t.Y, t.Y+t.H, t.X+t.W-1, t.X+t.W)
	default: // neighbor right: its left column
		return sandpile.RegionUnstable(g, t.Y, t.Y+t.H, t.X, t.X+1)
	}
}

// runAsyncWavesFrontier is the lazy multi-wave variant over per-wave
// frontier worklists: one frontier lane per checkerboard wave, so each
// wave schedules only its active tiles and the wake-up rebuild is
// O(frontier). The kernel is in-place (single buffer), so unlike the
// synchronous variants there is no coherence question at all — skipped
// tiles are simply untouched memory. Wake-ups are edge-gated: a
// toppled tile wakes a neighbor only when the neighbor's facing edge
// line actually holds an unstable cell — a stable tile stays stable
// until grains arriving on a boundary line push some cell to the
// threshold, and every arrival re-runs this check.
func runAsyncWavesFrontier(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	checkWaveTiles(p)
	tl := grid.NewTiling(g.H(), g.W(), p.TileH, p.TileW)
	pool := newVariantPool(p)
	defer pool.Close()

	before := g.Sum()
	nTiles := tl.NumTiles()
	topples := make([]int, nTiles)
	fr := grid.NewFrontier(nTiles, 4)
	if !seedResumeFrontier(fr, tl, p.resumeFrontier, tl.Wave) {
		fr.SeedAll(func(id int32) int { return tl.Wave(int(id)) })
	}
	gFrontier, cSkipped := frontierObs(p)

	var doTrace bool
	var iter int
	body := func(w int, ids []int32) {
		for _, id32 := range ids {
			id := int(id32)
			t := tl.Tile(id)
			var start time.Duration
			if doTrace {
				start = p.Recorder.Now()
			}
			topples[id] = sandpile.AsyncRegion(g, t.Y, t.Y+t.H, t.X, t.X+t.W)
			if doTrace {
				p.Recorder.Record(trace.Event{
					Iteration: iter, Worker: w, Tile: id,
					Start: start, Duration: p.Recorder.Now() - start,
					Cells: t.H * t.W,
				})
			}
		}
	}

	var res sandpile.Result
	for {
		res.Iterations++
		iter = res.Iterations
		doTrace = p.traced(iter)
		activeTiles := fr.Len()
		gFrontier.Set(float64(activeTiles))
		cSkipped.Add(int64(nTiles - activeTiles))
		cancelled := false
		for k := 0; k < fr.Lanes(); k++ {
			if pool.RunIndexedContext(p.ctx, fr.Lane(k), body) != nil {
				cancelled = true
				break
			}
		}
		if cancelled {
			break
		}
		total := 0
		for k := 0; k < fr.Lanes(); k++ {
			for _, id := range fr.Lane(k) {
				total += topples[id]
			}
		}
		res.Topples += uint64(total)
		if p.OnIteration != nil {
			p.OnIteration(IterStats{Iteration: iter, Changes: total, ActiveTiles: activeTiles, Grid: g,
				frontier: func() []int32 {
					var ids []int32
					for k := 0; k < fr.Lanes(); k++ {
						ids = append(ids, fr.Lane(k)...)
					}
					return ids
				}})
		}
		if total == 0 || res.Iterations >= p.MaxIters {
			break
		}
		fr.Begin()
		for k := 0; k < fr.Lanes(); k++ {
			for _, id := range fr.Lane(k) {
				if topples[id] == 0 {
					continue
				}
				fr.Add(id, k)
				for _, d := range grid.Dirs {
					nbID := tl.Neighbor(int(id), d)
					if nbID >= 0 && facingUnstable(g, tl.Tile(nbID), d) {
						fr.Add(int32(nbID), tl.Wave(nbID))
					}
				}
			}
		}
		fr.Flip()
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}
