// Package engine is the EASYPAP-analog execution harness for the
// Abelian-sandpile assignment: it owns the iterate-until-stable loop,
// a registry of named kernel variants (sequential, OpenMP-style
// parallel, tiled, lazy, multi-wave asynchronous, and the specialized
// inner-kernel variant), per-iteration monitoring, and optional task
// tracing.
//
// The registry mirrors EASYPAP's "add a few lines, recompile, and the
// new variant is available on the command line" workflow: variants are
// self-registering and every CLI/bench selects them by name.
package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sandpile"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Params configures a run.
type Params struct {
	// TileH, TileW set the tile extent for tiled variants; 0 means 32.
	TileH, TileW int
	// Workers is the worker-team size for parallel variants; 0 means
	// GOMAXPROCS.
	Workers int
	// Policy is the loop schedule for parallel variants.
	Policy sched.Policy
	// ChunkSize is the schedule chunk; 0 means 1.
	ChunkSize int
	// MaxIters aborts runaway runs; 0 means sandpile.MaxIterations.
	MaxIters int
	// Recorder, when non-nil, receives one event per executed tile
	// task for iterations in [TraceFrom, TraceTo]; TraceTo == 0 means
	// "to the end".
	Recorder           *trace.Recorder
	TraceFrom, TraceTo int
	// OnIteration, when non-nil, is called after every iteration with
	// live progress — the analog of EASYPAP's real-time monitoring
	// window. It runs on the coordinating goroutine; keep it cheap.
	OnIteration func(IterStats)
	// Obs attaches the observability layer: the worker pool of parallel
	// variants reports per-worker chunk spans and sched.* counters,
	// Run() adds engine.* counters and per-iteration spans on the
	// "engine" track. The zero Sink disables it at no cost.
	Obs obs.Sink
}

// IterStats is the per-iteration progress reported to OnIteration.
type IterStats struct {
	// Iteration is 1-based.
	Iteration int
	// Changes is the iteration's changed-cell count (synchronous
	// variants) or toppling count (asynchronous variants).
	Changes int
	// ActiveTiles is the number of tiles actually computed this
	// iteration; -1 for untiled variants.
	ActiveTiles int
	// Grid is the state just produced by this iteration. It is valid
	// only during the callback (the engine may reuse the buffer);
	// Clone it to retain a snapshot — this is how animations are
	// captured.
	Grid *grid.Grid
}

func (p Params) withDefaults() Params {
	if p.TileH <= 0 {
		p.TileH = 32
	}
	if p.TileW <= 0 {
		p.TileW = 32
	}
	if p.MaxIters <= 0 {
		p.MaxIters = sandpile.MaxIterations
	}
	if p.ChunkSize <= 0 {
		p.ChunkSize = 1
	}
	return p
}

func (p Params) traced(iter int) bool {
	if p.Recorder == nil {
		return false
	}
	if iter < p.TraceFrom {
		return false
	}
	return p.TraceTo == 0 || iter <= p.TraceTo
}

// Variant is a named strategy for stabilizing a sandpile in place.
type Variant struct {
	Name        string
	Description string
	// Parallel reports whether the variant uses a worker team.
	Parallel bool
	Run      func(g *grid.Grid, p Params) sandpile.Result
}

var registry = map[string]Variant{}

// Register adds a variant; duplicate names panic at init time, like a
// redefined kernel would fail to link in EASYPAP.
func Register(v Variant) {
	if _, dup := registry[v.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate variant %q", v.Name))
	}
	registry[v.Name] = v
}

// Lookup fetches a variant by name.
func Lookup(name string) (Variant, error) {
	v, ok := registry[name]
	if !ok {
		return Variant{}, fmt.Errorf("engine: unknown variant %q (have %v)", name, Names())
	}
	return v, nil
}

// Names returns all registered variant names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run looks up and executes a variant on g, which is stabilized in
// place.
func Run(name string, g *grid.Grid, p Params) (sandpile.Result, error) {
	v, err := Lookup(name)
	if err != nil {
		return sandpile.Result{}, err
	}
	if tr := p.Obs.Tracer; tr != nil {
		// Piggyback per-iteration spans on the monitor hook: wrapping
		// OnIteration switches every variant to its monitored loop, so
		// each iteration lands as one span on the engine track.
		track := tr.Track("engine", 0, name)
		last := tr.Now()
		user := p.OnIteration
		p.OnIteration = func(st IterStats) {
			now := tr.Now()
			tr.Span(track, "iteration", last, now-last,
				obs.Arg{Key: "iter", Value: int64(st.Iteration)},
				obs.Arg{Key: "changes", Value: int64(st.Changes)},
				obs.Arg{Key: "active_tiles", Value: int64(st.ActiveTiles)})
			last = now
			if user != nil {
				user(st)
			}
		}
	}
	res := v.Run(g, p)
	if m := p.Obs.Metrics; m != nil {
		m.Counter("engine.runs").Inc()
		m.Counter("engine.iterations").Add(int64(res.Iterations))
		m.Counter("engine.topples").Add(int64(res.Topples))
	}
	return res, nil
}

func init() {
	Register(Variant{
		Name:        "seq-sync",
		Description: "sequential synchronous steps with an auxiliary array (Fig 2 top)",
		Run: func(g *grid.Grid, p Params) sandpile.Result {
			if p.OnIteration == nil {
				return sandpile.StabilizeSyncSeq(g)
			}
			return runSeqSyncMonitored(g, p)
		},
	})
	Register(Variant{
		Name:        "seq-async",
		Description: "sequential in-place asynchronous sweeps (Fig 2 bottom); the oracle",
		Run: func(g *grid.Grid, p Params) sandpile.Result {
			if p.OnIteration == nil {
				return sandpile.StabilizeAsyncSeq(g)
			}
			return runSeqAsyncMonitored(g, p)
		},
	})
	Register(Variant{
		Name:        "omp-sync",
		Description: "row-parallel synchronous steps under the configured schedule (assignment 1)",
		Parallel:    true,
		Run:         runOmpSync,
	})
	Register(Variant{
		Name:        "tiled-sync",
		Description: "tile-parallel synchronous steps for cache reuse (assignment 2)",
		Parallel:    true,
		Run:         makeTiledSync(false, false),
	})
	Register(Variant{
		Name:        "lazy-sync",
		Description: "tile-parallel synchronous steps skipping steady-state neighborhoods (assignment 2)",
		Parallel:    true,
		Run:         makeTiledSync(true, false),
	})
	Register(Variant{
		Name:        "tiled-sync-inner",
		Description: "tiled-sync with the specialized branch-free kernel on inner tiles (assignment 3)",
		Parallel:    true,
		Run:         makeTiledSync(false, true),
	})
	Register(Variant{
		Name:        "lazy-sync-inner",
		Description: "lazy-sync with the specialized inner-tile kernel (assignments 2+3)",
		Parallel:    true,
		Run:         makeTiledSync(true, true),
	})
	Register(Variant{
		Name:        "async-waves",
		Description: "in-place asynchronous tiles in four checkerboard waves (race-free multi-wave scheduling)",
		Parallel:    true,
		Run:         makeAsyncWaves(false),
	})
	Register(Variant{
		Name:        "lazy-async-waves",
		Description: "async-waves skipping tiles whose neighborhood is quiescent",
		Parallel:    true,
		Run:         makeAsyncWaves(true),
	})
}

// runSeqSyncMonitored is the seq-sync loop with per-iteration
// reporting.
func runSeqSyncMonitored(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	before := g.Sum()
	next := grid.New(g.H(), g.W())
	cur := g
	var res sandpile.Result
	for {
		res.Iterations++
		ch := sandpile.SyncStep(cur, next)
		res.Topples += uint64(ch)
		p.OnIteration(IterStats{Iteration: res.Iterations, Changes: ch, ActiveTiles: -1, Grid: next})
		cur, next = next, cur
		if ch == 0 || res.Iterations >= p.MaxIters {
			break
		}
	}
	if cur != g {
		g.CopyFrom(cur)
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// runSeqAsyncMonitored is the seq-async loop with per-iteration
// reporting.
func runSeqAsyncMonitored(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	before := g.Sum()
	var res sandpile.Result
	for {
		res.Iterations++
		t := sandpile.AsyncRegion(g, 0, g.H(), 0, g.W())
		res.Topples += uint64(t)
		p.OnIteration(IterStats{Iteration: res.Iterations, Changes: t, ActiveTiles: -1, Grid: g})
		if t == 0 || res.Iterations >= p.MaxIters {
			break
		}
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// runOmpSync is the first assignment's variant: a plain parallel-for
// over rows, double-buffered, with a barrier per step — the direct
// analog of `#pragma omp parallel for schedule(...)` around the y
// loop.
func runOmpSync(g *grid.Grid, p Params) sandpile.Result {
	p = p.withDefaults()
	pool := sched.NewPool(sched.Options{Workers: p.Workers, Policy: p.Policy, ChunkSize: p.ChunkSize, Obs: p.Obs})
	defer pool.Close()

	before := g.Sum()
	next := grid.New(g.H(), g.W())
	cur := g
	var res sandpile.Result
	changes := make([]int, pool.Workers())
	for {
		res.Iterations++
		for i := range changes {
			changes[i] = 0
		}
		c, n := cur, next
		pool.Run(g.H(), func(w, lo, hi int) {
			ch := 0
			for y := lo; y < hi; y++ {
				ch += sandpile.SyncRow(c, n, y, 0, c.W())
			}
			changes[w] += ch
		})
		total := 0
		for _, ch := range changes {
			total += ch
		}
		res.Topples += uint64(total)
		if p.OnIteration != nil {
			p.OnIteration(IterStats{Iteration: res.Iterations, Changes: total, ActiveTiles: -1, Grid: next})
		}
		cur, next = next, cur
		if total == 0 {
			break
		}
		if res.Iterations >= p.MaxIters {
			break
		}
	}
	if cur != g {
		g.CopyFrom(cur)
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// tileTask computes one tile of a synchronous step, choosing the
// specialized kernel for inner tiles when enabled, and returns the
// number of changed cells.
func tileTask(cur, next *grid.Grid, t grid.Tile, useInner bool) int {
	if useInner && t.Inner(cur) {
		return sandpile.SyncRegionInner(cur, next, t.Y, t.Y+t.H, t.X, t.X+t.W)
	}
	return sandpile.SyncRegion(cur, next, t.Y, t.Y+t.H, t.X, t.X+t.W)
}

// copyTile copies a tile's cells from src to dst, used when the lazy
// variant skips a tile: the double buffers must stay coherent.
func copyTile(dst, src *grid.Grid, t grid.Tile) {
	for y := t.Y; y < t.Y+t.H; y++ {
		copy(dst.Row(y)[t.X:t.X+t.W], src.Row(y)[t.X:t.X+t.W])
	}
}

func makeTiledSync(lazy, inner bool) func(*grid.Grid, Params) sandpile.Result {
	return func(g *grid.Grid, p Params) sandpile.Result {
		p = p.withDefaults()
		tl := grid.NewTiling(g.H(), g.W(), p.TileH, p.TileW)
		pool := sched.NewPool(sched.Options{Workers: p.Workers, Policy: p.Policy, ChunkSize: p.ChunkSize, Obs: p.Obs})
		defer pool.Close()

		before := g.Sum()
		next := grid.New(g.H(), g.W())
		cur := g
		nTiles := tl.NumTiles()

		dirty := make([]bool, nTiles)   // recompute this iteration?
		changed := make([]bool, nTiles) // changed during this iteration
		for i := range dirty {
			dirty[i] = true
		}
		tileChanges := make([]int, nTiles)

		var res sandpile.Result
		for {
			res.Iterations++
			c, n := cur, next
			doTrace := p.traced(res.Iterations)
			iter := res.Iterations
			pool.Run(nTiles, func(w, lo, hi int) {
				for id := lo; id < hi; id++ {
					t := tl.Tile(id)
					var start time.Duration
					if doTrace {
						start = p.Recorder.Now()
					}
					cells := 0
					if !lazy || dirty[id] {
						ch := tileTask(c, n, t, inner)
						tileChanges[id] = ch
						changed[id] = ch > 0
						cells = t.H * t.W
					} else {
						copyTile(n, c, t)
						tileChanges[id] = 0
						changed[id] = false
					}
					if doTrace {
						p.Recorder.Record(trace.Event{
							Iteration: iter, Worker: w, Tile: id,
							Start: start, Duration: p.Recorder.Now() - start,
							Cells: cells,
						})
					}
				}
			})
			total := 0
			for _, ch := range tileChanges {
				total += ch
			}
			res.Topples += uint64(total)
			if p.OnIteration != nil {
				active := nTiles
				if lazy {
					active = 0
					for _, d := range dirty {
						if d {
							active++
						}
					}
				}
				p.OnIteration(IterStats{Iteration: res.Iterations, Changes: total, ActiveTiles: active, Grid: next})
			}
			cur, next = next, cur
			if total == 0 {
				break
			}
			if res.Iterations >= p.MaxIters {
				break
			}
			if lazy {
				// A tile must be recomputed next iteration iff it or a
				// 4-neighbor changed in this one.
				for i := range dirty {
					dirty[i] = changed[i]
				}
				var nbuf []int
				for id, ch := range changed {
					if !ch {
						continue
					}
					nbuf = tl.Neighbors4(id, nbuf[:0])
					for _, nb := range nbuf {
						dirty[nb] = true
					}
				}
			}
		}
		if cur != g {
			g.CopyFrom(cur)
		}
		g.ClearHalo()
		res.Absorbed = before - g.Sum()
		return res
	}
}

func makeAsyncWaves(lazy bool) func(*grid.Grid, Params) sandpile.Result {
	return func(g *grid.Grid, p Params) sandpile.Result {
		p = p.withDefaults()
		if p.TileH < 2 || p.TileW < 2 {
			panic("engine: async wave variants require tiles of at least 2x2 cells")
		}
		tl := grid.NewTiling(g.H(), g.W(), p.TileH, p.TileW)
		pool := sched.NewPool(sched.Options{Workers: p.Workers, Policy: p.Policy, ChunkSize: p.ChunkSize, Obs: p.Obs})
		defer pool.Close()

		before := g.Sum()
		waves := tl.Waves()
		nTiles := tl.NumTiles()
		dirty := make([]bool, nTiles)
		nextDirty := make([]bool, nTiles)
		for i := range dirty {
			dirty[i] = true
		}
		topples := make([]int, nTiles)

		var res sandpile.Result
		for {
			res.Iterations++
			doTrace := p.traced(res.Iterations)
			iter := res.Iterations
			for i := range topples {
				topples[i] = 0
			}
			for _, wave := range waves {
				if len(wave) == 0 {
					continue
				}
				wv := wave
				pool.Run(len(wv), func(w, lo, hi int) {
					for k := lo; k < hi; k++ {
						id := wv[k]
						if lazy && !dirty[id] {
							continue
						}
						t := tl.Tile(id)
						var start time.Duration
						if doTrace {
							start = p.Recorder.Now()
						}
						tp := sandpile.AsyncRegion(g, t.Y, t.Y+t.H, t.X, t.X+t.W)
						topples[id] = tp
						if doTrace {
							p.Recorder.Record(trace.Event{
								Iteration: iter, Worker: w, Tile: id,
								Start: start, Duration: p.Recorder.Now() - start,
								Cells: t.H * t.W,
							})
						}
					}
				})
			}
			total := 0
			for _, tp := range topples {
				total += tp
			}
			res.Topples += uint64(total)
			if p.OnIteration != nil {
				active := nTiles
				if lazy {
					active = 0
					for _, d := range dirty {
						if d {
							active++
						}
					}
				}
				p.OnIteration(IterStats{Iteration: res.Iterations, Changes: total, ActiveTiles: active, Grid: g})
			}
			if total == 0 {
				break
			}
			if res.Iterations >= p.MaxIters {
				break
			}
			if lazy {
				for i := range nextDirty {
					nextDirty[i] = topples[i] > 0
				}
				var nbuf []int
				for id, tp := range topples {
					if tp == 0 {
						continue
					}
					nbuf = tl.Neighbors4(id, nbuf[:0])
					for _, nb := range nbuf {
						nextDirty[nb] = true
					}
				}
				dirty, nextDirty = nextDirty, dirty
			}
		}
		g.ClearHalo()
		res.Absorbed = before - g.Sum()
		return res
	}
}
