package img

// gif.go renders sandpile evolutions as animated GIFs — the paper
// sells the assignment on "attractive fractal animations", and the
// stdlib's image/gif makes that artifact reproducible without SDL.

import (
	"fmt"
	"image"
	"image/color"
	"image/gif"
	"os"

	"repro/internal/grid"
)

// gifPalette is the sandpile palette plus white for unstable cells,
// as a GIF color table.
var gifPalette = color.Palette{
	SandpilePalette[0], SandpilePalette[1], SandpilePalette[2],
	SandpilePalette[3], SandpilePalette[4],
}

// Frame converts a grid snapshot to a paletted GIF frame, scaling
// each cell to scale×scale pixels.
func Frame(g *grid.Grid, scale int) *image.Paletted {
	if scale < 1 {
		scale = 1
	}
	im := image.NewPaletted(image.Rect(0, 0, g.W()*scale, g.H()*scale), gifPalette)
	for y := 0; y < g.H(); y++ {
		for x, v := range g.Row(y) {
			idx := uint8(4)
			if v < 4 {
				idx = uint8(v)
			}
			for dy := 0; dy < scale; dy++ {
				row := im.Pix[(y*scale+dy)*im.Stride:]
				for dx := 0; dx < scale; dx++ {
					row[x*scale+dx] = idx
				}
			}
		}
	}
	return im
}

// Animation assembles grid snapshots into an animated GIF. delay is
// per-frame display time in 10ms units (GIF's native resolution); the
// final frame lingers 10× longer so the stable configuration can be
// admired.
func Animation(frames []*grid.Grid, scale, delay int) (*gif.GIF, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("img: no frames")
	}
	if delay < 1 {
		delay = 1
	}
	out := &gif.GIF{LoopCount: 0}
	for i, g := range frames {
		if g.H() != frames[0].H() || g.W() != frames[0].W() {
			return nil, fmt.Errorf("img: frame %d is %dx%d, first frame %dx%d",
				i, g.H(), g.W(), frames[0].H(), frames[0].W())
		}
		d := delay
		if i == len(frames)-1 {
			d = delay * 10
		}
		out.Image = append(out.Image, Frame(g, scale))
		out.Delay = append(out.Delay, d)
	}
	return out, nil
}

// SaveGIF writes an animation built from the snapshots to path.
func SaveGIF(path string, frames []*grid.Grid, scale, delay int) error {
	anim, err := Animation(frames, scale, delay)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("img: %w", err)
	}
	defer f.Close()
	if err := gif.EncodeAll(f, anim); err != nil {
		return fmt.Errorf("img: encoding %s: %w", path, err)
	}
	return f.Close()
}
