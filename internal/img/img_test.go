package img

import (
	"bytes"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

func TestSandpilePaletteMapping(t *testing.T) {
	g := grid.NewFrom([][]uint32{{0, 1, 2, 3, 7}})
	im := Sandpile(g, 1)
	for x, want := range []int{0, 1, 2, 3, 4} {
		got := im.NRGBAAt(x, 0)
		if got != SandpilePalette[want] {
			t.Fatalf("pixel %d = %v, want palette[%d] = %v", x, got, want, SandpilePalette[want])
		}
	}
}

func TestSandpileScale(t *testing.T) {
	g := grid.NewFrom([][]uint32{{3}})
	im := Sandpile(g, 4)
	b := im.Bounds()
	if b.Dx() != 4 || b.Dy() != 4 {
		t.Fatalf("scaled image %dx%d, want 4x4", b.Dx(), b.Dy())
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if im.NRGBAAt(x, y) != SandpilePalette[3] {
				t.Fatalf("pixel (%d,%d) not filled", x, y)
			}
		}
	}
	// scale < 1 clamps to 1
	if b := Sandpile(g, 0).Bounds(); b.Dx() != 1 {
		t.Fatalf("scale 0 image width = %d, want 1", b.Dx())
	}
}

func TestTileOwnersColors(t *testing.T) {
	tl := grid.NewTiling(8, 8, 4, 4)   // 4 tiles
	owners := map[int]int{0: 0, 1: -1} // tile 2,3 stable
	im := TileOwners(tl, owners)
	if c := im.NRGBAAt(0, 0); c != workerColors[0] {
		t.Fatalf("tile 0 color %v, want worker 0 color", c)
	}
	if c := im.NRGBAAt(4, 0); c != deviceColor {
		t.Fatalf("tile 1 color %v, want device color", c)
	}
	black := im.NRGBAAt(0, 4)
	if black.R != 0 || black.G != 0 || black.B != 0 {
		t.Fatalf("stable tile not black: %v", black)
	}
}

func TestDivergingEndpointsAndMidpoint(t *testing.T) {
	lo := Diverging(0, 0, 10)
	if lo.B <= lo.R {
		t.Fatalf("low end not blue: %v", lo)
	}
	hi := Diverging(10, 0, 10)
	if hi.R <= hi.B {
		t.Fatalf("high end not red: %v", hi)
	}
	mid := Diverging(5, 0, 10)
	if mid.R != 255 || mid.G != 255 || mid.B != 255 {
		t.Fatalf("midpoint not white: %v", mid)
	}
}

func TestDivergingClamps(t *testing.T) {
	if Diverging(-100, 0, 10) != Diverging(0, 0, 10) {
		t.Fatal("below-range value not clamped")
	}
	if Diverging(100, 0, 10) != Diverging(10, 0, 10) {
		t.Fatal("above-range value not clamped")
	}
}

func TestDivergingDegenerateRange(t *testing.T) {
	c := Diverging(5, 10, 10)
	if c.R != 255 || c.G != 255 || c.B != 255 {
		t.Fatalf("degenerate range should render white, got %v", c)
	}
}

func TestDivergingMonotoneRedness(t *testing.T) {
	// Warmer years must never be bluer.
	prev := math.Inf(-1)
	for i := 0; i <= 20; i++ {
		c := Diverging(float64(i), 0, 20)
		redness := float64(c.R) - float64(c.B)
		if redness < prev-1e-9 {
			t.Fatalf("redness not monotone at %d", i)
		}
		prev = redness
	}
}

func TestStripesGeometryAndGaps(t *testing.T) {
	vals := []float64{0, math.NaN(), 10}
	im := Stripes(vals, 0, 10, 3, 5)
	b := im.Bounds()
	if b.Dx() != 9 || b.Dy() != 5 {
		t.Fatalf("stripes image %dx%d, want 9x5", b.Dx(), b.Dy())
	}
	if c := im.NRGBAAt(0, 0); c.B <= c.R {
		t.Fatalf("cold stripe not blue: %v", c)
	}
	gap := im.NRGBAAt(4, 2)
	if gap.R != gap.G || gap.G != gap.B {
		t.Fatalf("missing-year stripe not grey: %v", gap)
	}
	if c := im.NRGBAAt(8, 4); c.R <= c.B {
		t.Fatalf("warm stripe not red: %v", c)
	}
}

func TestStripesDegenerateSizes(t *testing.T) {
	im := Stripes([]float64{1}, 0, 1, 0, 0)
	b := im.Bounds()
	if b.Dx() != 1 || b.Dy() != 1 {
		t.Fatalf("degenerate stripe image %dx%d, want 1x1", b.Dx(), b.Dy())
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	g := grid.NewFrom([][]uint32{{1, 2}, {3, 0}})
	var buf bytes.Buffer
	if err := WritePNG(&buf, Sandpile(g, 2)); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 4 {
		t.Fatalf("decoded width %d, want 4", decoded.Bounds().Dx())
	}
}

func TestSavePNG(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.png")
	g := grid.NewFrom([][]uint32{{1}})
	if err := SavePNG(path, Sandpile(g, 1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || !bytes.HasPrefix(data, []byte("\x89PNG")) {
		t.Fatal("output is not a PNG")
	}
	if err := SavePNG(filepath.Join(dir, "no/such/dir/x.png"), Sandpile(g, 1)); err == nil {
		t.Fatal("SavePNG to missing directory should fail")
	}
}
