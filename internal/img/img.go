// Package img renders the paper's visual artifacts as PNG images: the
// sandpile palette of Figure 1 (black/green/blue/red for 0/1/2/3
// grains), the tile-ownership view of Figure 4 (worker colors, black
// for stable tiles), and the warming-stripes bars of Figure 6 with a
// diverging blue–white–red colormap.
package img

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"

	"repro/internal/grid"
)

// SandpilePalette maps grain counts 0..3 to the colors of the paper's
// Figure 1: "Black pixels correspond to cells with 0 grains, green to
// 1, blue to 2, and red to 3." Cells at 4+ (unstable snapshots) render
// white.
var SandpilePalette = [5]color.NRGBA{
	{0x00, 0x00, 0x00, 0xff}, // 0: black
	{0x00, 0xc0, 0x00, 0xff}, // 1: green
	{0x20, 0x40, 0xff, 0xff}, // 2: blue
	{0xe0, 0x20, 0x20, 0xff}, // 3: red
	{0xff, 0xff, 0xff, 0xff}, // 4+: white (unstable)
}

// Sandpile renders a grid with the Figure 1 palette, scaling each cell
// to scale×scale pixels (scale < 1 is treated as 1).
func Sandpile(g *grid.Grid, scale int) *image.NRGBA {
	if scale < 1 {
		scale = 1
	}
	im := image.NewNRGBA(image.Rect(0, 0, g.W()*scale, g.H()*scale))
	for y := 0; y < g.H(); y++ {
		for x, v := range g.Row(y) {
			c := SandpilePalette[4]
			if int(v) < 4 {
				c = SandpilePalette[v]
			}
			fillRect(im, x*scale, y*scale, scale, scale, c)
		}
	}
	return im
}

// workerColors is a qualitative palette for tile-ownership maps; the
// device (id -1) gets a dedicated violet, workers cycle through the
// rest.
var workerColors = []color.NRGBA{
	{0xe6, 0x9f, 0x00, 0xff}, // orange
	{0x56, 0xb4, 0xe9, 0xff}, // sky blue
	{0x00, 0x9e, 0x73, 0xff}, // bluish green
	{0xf0, 0xe4, 0x42, 0xff}, // yellow
	{0x00, 0x72, 0xb2, 0xff}, // blue
	{0xd5, 0x5e, 0x00, 0xff}, // vermillion
	{0xcc, 0x79, 0xa7, 0xff}, // reddish purple
	{0x99, 0x99, 0x99, 0xff}, // grey
}

// deviceColor marks accelerator-owned tiles in ownership maps.
var deviceColor = color.NRGBA{0x8a, 0x2b, 0xe2, 0xff}

// TileOwners renders the Figure 4 view: each tile is painted with its
// owning worker's color; tiles absent from owners (never computed,
// i.e. stable) are black. Tile geometry comes from tl; each tile cell
// is one pixel.
func TileOwners(tl *grid.Tiling, owners map[int]int) *image.NRGBA {
	im := image.NewNRGBA(image.Rect(0, 0, tl.GridW, tl.GridH))
	for _, t := range tl.Tiles() {
		c := color.NRGBA{0, 0, 0, 0xff} // stable: black
		if w, ok := owners[t.ID]; ok {
			if w < 0 {
				c = deviceColor
			} else {
				c = workerColors[w%len(workerColors)]
			}
		}
		fillRect(im, t.X, t.Y, t.W, t.H, c)
	}
	return im
}

// Diverging maps v ∈ [lo, hi] onto a blue–white–red diverging ramp
// (the RdBu-style scale of warming stripes): lo is saturated blue,
// the midpoint white, hi saturated red. Values outside the range are
// clamped, exactly how the assignment's colorbar is "manually
// specified" from mean ± 1.5 °C.
func Diverging(v, lo, hi float64) color.NRGBA {
	if hi <= lo {
		return color.NRGBA{0xff, 0xff, 0xff, 0xff}
	}
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Piecewise-linear ramp through (blue, white, red) endpoints taken
	// from the ColorBrewer RdBu extremes.
	var r, g, b float64
	if t < 0.5 {
		u := t * 2 // blue -> white
		r = lerp(5, 255, u)
		g = lerp(48, 255, u)
		b = lerp(97, 255, u)
	} else {
		u := (t - 0.5) * 2 // white -> red
		r = lerp(255, 103, u)
		g = lerp(255, 0, u)
		b = lerp(255, 31, u)
	}
	return color.NRGBA{uint8(math.Round(r)), uint8(math.Round(g)), uint8(math.Round(b)), 0xff}
}

// Stripes renders one vertical bar per value (a year), colored by the
// diverging ramp over [lo, hi] — the Figure 6 warming-stripes image.
// Missing values (NaN) render as grey gaps.
func Stripes(values []float64, lo, hi float64, barWidth, height int) *image.NRGBA {
	if barWidth < 1 {
		barWidth = 1
	}
	if height < 1 {
		height = 1
	}
	im := image.NewNRGBA(image.Rect(0, 0, len(values)*barWidth, height))
	grey := color.NRGBA{0x60, 0x60, 0x60, 0xff}
	for i, v := range values {
		c := grey
		if !math.IsNaN(v) {
			c = Diverging(v, lo, hi)
		}
		fillRect(im, i*barWidth, 0, barWidth, height, c)
	}
	return im
}

// WritePNG encodes im to w.
func WritePNG(w io.Writer, im image.Image) error {
	return png.Encode(w, im)
}

// SavePNG writes im to path, creating or truncating the file.
func SavePNG(path string, im image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("img: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, im); err != nil {
		return fmt.Errorf("img: encoding %s: %w", path, err)
	}
	return f.Close()
}

func fillRect(im *image.NRGBA, x0, y0, w, h int, c color.NRGBA) {
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			im.SetNRGBA(x, y, c)
		}
	}
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }
