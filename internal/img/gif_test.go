package img

import (
	"image/gif"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

func TestFramePaletteMapping(t *testing.T) {
	g := grid.NewFrom([][]uint32{{0, 1, 2, 3, 9}})
	im := Frame(g, 1)
	for x, want := range []uint8{0, 1, 2, 3, 4} {
		if got := im.Pix[x]; got != want {
			t.Fatalf("pixel %d index = %d, want %d", x, got, want)
		}
	}
}

func TestFrameScaling(t *testing.T) {
	g := grid.NewFrom([][]uint32{{3}})
	im := Frame(g, 3)
	if im.Bounds().Dx() != 3 || im.Bounds().Dy() != 3 {
		t.Fatalf("frame %v, want 3x3", im.Bounds())
	}
	for _, p := range im.Pix {
		if p != 3 {
			t.Fatalf("scaled pixels = %v", im.Pix)
		}
	}
	if Frame(g, 0).Bounds().Dx() != 1 {
		t.Fatal("scale clamp broken")
	}
}

func TestAnimationStructure(t *testing.T) {
	frames := []*grid.Grid{grid.New(4, 4), grid.New(4, 4), grid.New(4, 4)}
	anim, err := Animation(frames, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(anim.Image) != 3 || len(anim.Delay) != 3 {
		t.Fatalf("frames = %d delays = %d", len(anim.Image), len(anim.Delay))
	}
	if anim.Delay[0] != 5 || anim.Delay[2] != 50 {
		t.Fatalf("delays = %v; final frame should linger 10x", anim.Delay)
	}
	if anim.LoopCount != 0 {
		t.Fatal("animation should loop forever")
	}
}

func TestAnimationErrors(t *testing.T) {
	if _, err := Animation(nil, 1, 1); err == nil {
		t.Fatal("empty animation accepted")
	}
	mixed := []*grid.Grid{grid.New(4, 4), grid.New(5, 4)}
	if _, err := Animation(mixed, 1, 1); err == nil {
		t.Fatal("mismatched frames accepted")
	}
}

func TestSaveGIFRoundTrip(t *testing.T) {
	a := grid.New(8, 8)
	b := a.Clone()
	b.Set(4, 4, 3)
	path := filepath.Join(t.TempDir(), "anim.gif")
	if err := SaveGIF(path, []*grid.Grid{a, b}, 2, 4); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := gif.DecodeAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Image) != 2 {
		t.Fatalf("decoded frames = %d, want 2", len(decoded.Image))
	}
	if decoded.Image[0].Bounds().Dx() != 16 {
		t.Fatalf("frame width = %d, want 16", decoded.Image[0].Bounds().Dx())
	}
	if err := SaveGIF(filepath.Join(t.TempDir(), "no/dir/x.gif"), []*grid.Grid{a}, 1, 1); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := SaveGIF(path, nil, 1, 1); err == nil {
		t.Fatal("empty frames accepted")
	}
}
