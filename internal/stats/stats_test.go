package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.Mean, 3) ||
		!almost(s.Median, 3) || !almost(s.Sum, 15) {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almost(s.Stddev, math.Sqrt(2)) {
		t.Fatalf("stddev = %v, want sqrt(2)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Sum != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if !almost(s.Min, 7) || !almost(s.Max, 7) || !almost(s.Median, 7) || !almost(s.P95, 7) || s.Stddev != 0 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); !almost(q, 5) {
		t.Fatalf("median of {0,10} = %v, want 5", q)
	}
	if q := Quantile(sorted, 0); !almost(q, 0) {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); !almost(q, 10) {
		t.Fatalf("q1 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty sample should be NaN")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if s := Speedup(8*time.Second, 2*time.Second); !almost(s, 4) {
		t.Fatalf("speedup = %v, want 4", s)
	}
	if e := Efficiency(8*time.Second, 2*time.Second, 8); !almost(e, 0.5) {
		t.Fatalf("efficiency = %v, want 0.5", e)
	}
	if !math.IsNaN(Speedup(time.Second, 0)) {
		t.Fatal("speedup with tp=0 should be NaN")
	}
	if !math.IsNaN(Efficiency(time.Second, time.Second, 0)) {
		t.Fatal("efficiency with p=0 should be NaN")
	}
}

func TestImbalance(t *testing.T) {
	if im := Imbalance([]float64{10, 10, 10}); !almost(im, 0) {
		t.Fatalf("balanced imbalance = %v, want 0", im)
	}
	if im := Imbalance([]float64{20, 10, 0}); !almost(im, 1) {
		t.Fatalf("imbalance = %v, want 1 (max=20, mean=10)", im)
	}
	if im := Imbalance(nil); im != 0 {
		t.Fatalf("empty imbalance = %v, want 0", im)
	}
	if im := Imbalance([]float64{0, 0}); im != 0 {
		t.Fatalf("all-zero imbalance = %v, want 0", im)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !almost(g, 2) {
		t.Fatalf("geomean(1,4) = %v, want 2", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Fatal("geomean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("geomean of empty should be NaN")
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(100))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Median <= s.P95+1e-12 && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickImbalanceNonNegative(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Imbalance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Fatal("empty String()")
	}
}
