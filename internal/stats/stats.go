// Package stats provides the small statistics toolkit shared by the
// benchmark harnesses: summary statistics, parallel speedup and
// efficiency, and load-imbalance measures used when comparing
// scheduling policies and tile sizes.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Stddev   float64
	Median, P95    float64
	Sum            float64
	CoefficientVar float64 // Stddev/Mean, 0 when Mean == 0
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N))
	if s.Mean != 0 {
		s.CoefficientVar = s.Stddev / s.Mean
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted
// sample using linear interpolation between closest ranks.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Speedup returns t1/tp, the classic parallel speedup.
func Speedup(t1, tp time.Duration) float64 {
	if tp <= 0 {
		return math.NaN()
	}
	return float64(t1) / float64(tp)
}

// Efficiency returns Speedup(t1, tp)/p, the parallel efficiency on p
// processors.
func Efficiency(t1, tp time.Duration, p int) float64 {
	if p <= 0 {
		return math.NaN()
	}
	return Speedup(t1, tp) / float64(p)
}

// Imbalance quantifies load imbalance of per-worker work amounts as
// max/mean − 1: 0 means perfectly balanced, 1 means the busiest worker
// carries twice the average.
func Imbalance(perWorker []float64) float64 {
	if len(perWorker) == 0 {
		return 0
	}
	var sum, max float64
	for _, w := range perWorker {
		sum += w
		if w > max {
			max = w
		}
	}
	mean := sum / float64(len(perWorker))
	if mean == 0 {
		return 0
	}
	return max/mean - 1
}

// GeoMean returns the geometric mean of strictly positive samples, the
// conventional way to average speedups; it returns NaN if any sample
// is non-positive or the slice is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g mean=%.4g median=%.4g p95=%.4g max=%.4g sd=%.4g",
		s.N, s.Min, s.Mean, s.Median, s.P95, s.Max, s.Stddev)
}
