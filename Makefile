# Tier-1 verification plus race detection in one command: `make check`.
GO ?= go

.PHONY: build test race vet check bench-baseline bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

# Record the perf trajectory future PRs diff against. -benchtime=100ms
# keeps the sweep to a couple of minutes; bump it for headline numbers.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchtime=100ms ./... \
		| $(GO) run ./cmd/benchjson -go-version "$$($(GO) env GOVERSION)" -out BENCH_baseline.json

# Sweep the current tree and diff it against the recorded baseline;
# fails if any benchmark regressed more than 10%. Override BASELINE to
# diff against a specific snapshot, e.g.
# `make bench-compare BASELINE=BENCH_pr2.json`.
BASELINE ?= BENCH_baseline.json

bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime=100ms ./... \
		| $(GO) run ./cmd/benchjson -go-version "$$($(GO) env GOVERSION)" -out BENCH_current.json
	$(GO) run ./cmd/benchjson -compare $(BASELINE) BENCH_current.json
