# Tier-1 verification plus race detection in one command: `make check`.
GO ?= go

.PHONY: build test race vet check soak smoke-telemetry smoke-external smoke-peachyd smoke-fleet soak-peachyd bench-baseline bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

# Kill–resume soak: SIGKILL each durable workload at random points,
# resume it from its snapshots, and assert the final state is
# byte-identical to a clean run. `-quick` keeps it CI-sized (<2 min);
# drop it (`go run ./cmd/chaos`) for the full-size soak.
SOAK_KILLS ?= 3
SOAK_SEED ?= 1

soak:
	$(GO) run ./cmd/chaos -quick -kills $(SOAK_KILLS) -seed $(SOAK_SEED)

# Boot a real run with -obs-listen and scrape /metrics, /healthz,
# /progress, and /events the way Prometheus / an operator would,
# asserting on the payloads. See scripts/telemetry_smoke.sh.
smoke-telemetry:
	./scripts/telemetry_smoke.sh

# Memory-capped out-of-core shuffle: a word count several times larger
# than its shuffle budget runs under a hard GOMEMLIMIT, spills, merges
# multi-pass, and must match the in-memory reference byte for byte.
# See scripts/external_smoke.sh; EXT_SMOKE_LINES scales the corpus.
smoke-external:
	./scripts/external_smoke.sh

# Boot a real peachyd job server and assert the service guarantees
# end to end: one job of each kind over HTTP, result bytes identical
# to the CLI one-shot, SSE progress events, jobs_* metrics, and
# kill -9 + restart resuming a journalled queued job. See
# scripts/peachyd_smoke.sh.
smoke-peachyd:
	./scripts/peachyd_smoke.sh

# Process-fleet transport end to end: a coordinator plus 4 worker
# subprocesses over unix sockets, two SIGKILLed mid-run; asserts
# byte-equality with the clean in-process run and a "worker rejoined"
# event on the live SSE stream. See scripts/fleet_smoke.sh.
smoke-fleet:
	./scripts/fleet_smoke.sh

# Dozens of concurrent synthetic tenants against one server with a
# tight per-tenant quota: every submission must eventually succeed,
# with 429 backpressure absorbed by client retries along the way.
# PEACHYD_SOAK_TENANTS / PEACHYD_SOAK_JOBS scale the load.
soak-peachyd:
	./scripts/peachyd_soak.sh

# Record the perf trajectory future PRs diff against. -benchtime=100ms
# keeps the sweep to a couple of minutes; bump it for headline numbers.
# -count=$(BENCH_COUNT) runs each benchmark several times and benchjson
# keeps the fastest — min-of-N filters scheduler noise on small/shared
# machines, where a single 100ms sample can swing well past the 10% gate.
BENCH_COUNT ?= 3

bench-baseline:
	$(GO) test -run '^$$' -bench . -benchtime=100ms -count=$(BENCH_COUNT) ./... \
		| $(GO) run ./cmd/benchjson -go-version "$$($(GO) env GOVERSION)" -out BENCH_baseline.json

# Sweep the current tree and diff it against the recorded baseline;
# fails if any benchmark regressed more than 10%. Override BASELINE to
# diff against a specific snapshot, e.g.
# `make bench-compare BASELINE=BENCH_pr2.json`. BENCH_pr9.json is the
# current reference: it adds the Time Warp planet-scale sweep
# (BenchmarkTimeWarpSweep, workers 1/2/4/8) to the PR 7 suite. The
# parallel entries were recorded on a single-vCPU runner, so they
# price optimism overhead, not speedup; see EXPERIMENTS.md E28.
BASELINE ?= BENCH_pr9.json

bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime=100ms -count=$(BENCH_COUNT) ./... \
		| $(GO) run ./cmd/benchjson -go-version "$$($(GO) env GOVERSION)" -out BENCH_current.json
	$(GO) run ./cmd/benchjson -compare $(BASELINE) BENCH_current.json
