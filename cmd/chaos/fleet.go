package main

// fleet.go is the real-process fleet mode: instead of kill–resume over
// durable checkpoints, the driver runs a coordinator in-process, spawns
// its workers as subprocesses of itself joined over a socket transport,
// SIGKILLs some of them mid-run, and asserts the final state is
// byte-identical to a clean in-process run of the same workload. This
// is the end-to-end proof for internal/net: leases detect the deaths,
// the supervisor respawns the ranks, rejoin re-dispatch keeps the
// computation exact.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ghost"
	"repro/internal/mapreduce"
	pnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/sandpile"
)

var fleetWorkloads = []string{"ghost", "ghost2d", "wordcount"}

// fleetProcs tracks the live worker subprocess per rank so the killer
// can SIGKILL one and the cleanup can reap the rest.
type fleetProcs struct {
	mu   sync.Mutex
	cmds map[int]*exec.Cmd
}

func (f *fleetProcs) put(rank int, cmd *exec.Cmd) {
	f.mu.Lock()
	f.cmds[rank] = cmd
	f.mu.Unlock()
}

// kill SIGKILLs the rank's current process; reports whether a process
// was there to kill.
func (f *fleetProcs) kill(rank int) bool {
	f.mu.Lock()
	cmd := f.cmds[rank]
	f.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return false
	}
	return cmd.Process.Kill() == nil
}

func (f *fleetProcs) killAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, cmd := range f.cmds {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

// fleetSpawn builds the FleetConfig.Spawn hook: self-exec a worker
// subprocess pointed at the coordinator's address.
func fleetSpawn(self, workload, scheme string, procs *fleetProcs, quick bool) func(rank int, addr string) error {
	return func(rank int, addr string) error {
		args := []string{
			"-fleet-worker", workload,
			"-transport", scheme,
			"-join", addr,
			"-rank", strconv.Itoa(rank),
		}
		if quick {
			args = append(args, "-quick")
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		procs.put(rank, cmd)
		go cmd.Wait() // reap; SIGKILLed workers must not linger as zombies
		return nil
	}
}

// fleetListen picks a listen address for the scheme: a socket file in
// the scratch dir for unix, loopback with an ephemeral port for tcp.
func fleetListen(scheme, scratch, wl string) string {
	if scheme == "unix" {
		return filepath.Join(scratch, wl+".sock")
	}
	return "127.0.0.1:0"
}

// startKiller delivers up to kills SIGKILLs to worker ranks (skipping
// rank 0 so every workload keeps at least one stable rank) at random
// delays, until stop closes. Returns the delivered counter.
func startKiller(procs *fleetProcs, workers, kills int, killMax time.Duration,
	rng *rand.Rand, stop <-chan struct{}, log *obs.Logger) *atomic.Int64 {
	delivered := &atomic.Int64{}
	delays := make([]time.Duration, kills)
	victims := make([]int, kills)
	for k := range delays {
		delays[k] = time.Duration(rng.Int63n(int64(killMax)-5e6) + 5e6) // [5ms, killMax)
		victims[k] = 1 + k%(workers-1)
	}
	go func() {
		for k := 0; k < kills; k++ {
			select {
			case <-stop:
				return
			case <-time.After(delays[k]):
			}
			if procs.kill(victims[k]) {
				delivered.Add(1)
				log.Event(obs.LevelWarn, "chaos", "fleet worker SIGKILLed",
					obs.Arg{Key: "rank", Value: int64(victims[k])},
					obs.Arg{Key: "kill", Value: delivered.Load()})
			}
		}
	}()
	return delivered
}

// fleetSoak runs one fleet workload against real SIGKILLed worker
// subprocesses and compares its state bytes with the clean in-process
// run.
func fleetSoak(self, wl, scratch, scheme string, kills int, killMax time.Duration,
	quick bool, rng *rand.Rand, log *obs.Logger, sink obs.Sink) error {
	tr, err := pnet.New(scheme)
	if err != nil {
		return err
	}
	procs := &fleetProcs{cmds: map[int]*exec.Cmd{}}
	defer procs.killAll()
	stop := make(chan struct{})
	defer close(stop)

	workers := 3
	if wl == "ghost2d" {
		workers = 4
	}
	fc := &pnet.FleetConfig{
		Transport: tr,
		Listen:    fleetListen(scheme, scratch, wl),
		Lease:     time.Second,
		Spawn:     fleetSpawn(self, fleetWorkerName(wl), scheme, procs, quick),
	}
	delivered := startKiller(procs, workers, kills, killMax, rng, stop, log)

	var ref, got []byte
	switch wl {
	case "ghost", "ghost2d":
		size, grains := 144, uint32(200000)
		if quick {
			size, grains = 96, 80000
		}
		opts := []ghost.Option{ghost.WithRanks(3), ghost.WithWidth(2)}
		if wl == "ghost2d" {
			opts = []ghost.Option{ghost.WithProcessGrid(2, 2), ghost.WithWidth(2)}
		}
		refG := sandpile.Center(grains).Build(size, size, nil)
		refRep, err := ghost.New(refG, opts...).Run()
		if err != nil {
			return fmt.Errorf("in-process reference: %w", err)
		}
		ref = sandpileState(refRep.Iterations, refRep.Topples, refRep.Absorbed, refG)

		g := sandpile.Center(grains).Build(size, size, nil)
		rep, err := ghost.New(g, append(opts, ghost.WithFleet(fc), ghost.WithObs(sink))...).Run()
		if err != nil {
			return fmt.Errorf("fleet run: %w", err)
		}
		got = sandpileState(rep.Iterations, rep.Topples, rep.Absorbed, g)
		log.Event(obs.LevelInfo, "chaos", "fleet run finished "+wl,
			obs.Arg{Key: "kills", Value: delivered.Load()},
			obs.Arg{Key: "recoveries", Value: int64(rep.Recoveries)})
		if delivered.Load() > 0 && rep.Recoveries == 0 {
			return fmt.Errorf("%d SIGKILLs delivered but the run saw no recoveries", delivered.Load())
		}

	case "wordcount":
		lines := 60000
		if quick {
			lines = 20000
		}
		corpus := chaosCorpus(lines)
		job := fleetWordCountJob()
		refOut, _, err := job.Run(corpus)
		if err != nil {
			return fmt.Errorf("in-process reference: %w", err)
		}
		ref = []byte(strings.Join(refOut, "\n"))

		fc.Workers = workers
		fleetJob := fleetWordCountJob()
		fleetJob.Config.Obs = sink
		out, stats, err := fleetJob.RunFleet(context.Background(), corpus, fc, chaosWire())
		if err != nil {
			return fmt.Errorf("fleet run: %w", err)
		}
		got = []byte(strings.Join(out, "\n"))
		log.Event(obs.LevelInfo, "chaos", "fleet run finished "+wl,
			obs.Arg{Key: "kills", Value: delivered.Load()},
			obs.Arg{Key: "task_retries", Value: int64(stats.TaskRetries)})

	default:
		return fmt.Errorf("unknown fleet workload %q", wl)
	}

	if !bytes.Equal(got, ref) {
		return fmt.Errorf("fleet state after %d kills differs from the in-process run (%d vs %d bytes)",
			delivered.Load(), len(got), len(ref))
	}
	fmt.Printf("chaos: fleet-%s: %d kills delivered over %s, state identical (%d bytes)\n",
		wl, delivered.Load(), scheme, len(got))
	return nil
}

// fleetWorkerName maps a driver workload to the worker-side program:
// 1-D and 2-D ghost share one worker (geometry travels per round).
func fleetWorkerName(wl string) string {
	if wl == "ghost2d" {
		return "ghost"
	}
	return wl
}

// runFleetWorkerMode is the subprocess side: join the coordinator and
// serve tasks until stopped (or until the coordinator goes away for
// good).
func runFleetWorkerMode(workload, scheme, join string, rank int) error {
	tr, err := pnet.New(scheme)
	if err != nil {
		return err
	}
	cfg := pnet.WorkerConfig{
		Transport:       tr,
		Join:            join,
		Rank:            rank,
		Backoff:         pnet.Backoff{Base: 25 * time.Millisecond, Max: time.Second, Seed: int64(rank)},
		MaxDialAttempts: 200,
	}
	switch workload {
	case "ghost":
		return ghost.FleetWorker(context.Background(), cfg)
	case "wordcount":
		return fleetWordCountJob().FleetWorker(context.Background(), cfg, chaosWire())
	}
	return fmt.Errorf("unknown fleet worker workload %q", workload)
}

// fleetWordCountJob is the wordcount used in fleet mode: identical
// map/reduce logic to the kill–resume workload, no spill (fleet
// durability is re-dispatch, not disk).
func fleetWordCountJob() *mapreduce.Job[string, string, int, string] {
	return wordCountJob(nil)
}

// chaosWire moves the fleet wordcount's records and pairs across the
// socket: strings in, (string, int) pairs shuffled, "word n" lines out.
func chaosWire() *mapreduce.Wire[string, string, int, string] {
	return &mapreduce.Wire[string, string, int, string]{
		AppendIn: mapreduce.AppendString, ReadIn: mapreduce.ReadString,
		AppendKey: mapreduce.AppendString, ReadKey: mapreduce.ReadString,
		AppendVal: mapreduce.AppendInt, ReadVal: mapreduce.ReadInt,
		AppendOut: mapreduce.AppendString, ReadOut: mapreduce.ReadString,
	}
}
