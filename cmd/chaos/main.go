// Command chaos is the kill–resume soak harness for the durable
// checkpoint subsystem (internal/ckpt). For each workload it first
// computes a clean in-process reference state, then repeatedly
// launches itself as a worker subprocess, SIGKILLs the worker at a
// random point, and resumes it from the snapshots it left behind.
// After the final (unkilled) run it asserts the worker's state file is
// byte-identical to the reference — the end-to-end proof that durable
// checkpoints plus deterministic replay survive real process death.
//
// Examples:
//
//	chaos                                  # all workloads, 3 kills each
//	chaos -workload sandpile-faults -kills 5 -seed 9
//	chaos -workload wfsim -kill-max 500ms
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/ghost"
	"repro/internal/grid"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sandpile"
	"repro/internal/wfsched"
)

var workloads = []string{"sandpile", "sandpile-faults", "wfsim", "wordcount"}

func main() {
	var (
		workload  = flag.String("workload", "all", "workload to soak: "+strings.Join(workloads, "|")+"|all")
		kills     = flag.Int("kills", 3, "SIGKILLs to deliver before the final clean run")
		seed      = flag.Int64("seed", 1, "seed for the kill-timing RNG")
		dir       = flag.String("dir", "", "scratch directory (default: a fresh temp dir)")
		killMax   = flag.Duration("kill-max", 1200*time.Millisecond, "upper bound on the random kill delay")
		quick     = flag.Bool("quick", false, "shrink workloads for fast CI soaks")
		obsListen = flag.String("obs-listen", "", "worker telemetry address, forwarded to every launched worker (workers run one at a time, so they can share it); in -fleet mode the driver itself serves telemetry here instead")
		worker    = flag.Bool("worker", false, "internal: run one workload with resume and write the state file")
		out       = flag.String("out", "", "internal: state-file path (worker mode)")

		fleet       = flag.Bool("fleet", false, "process-fleet soak: run "+strings.Join(fleetWorkloads, "|")+" with real worker subprocesses over a socket transport and SIGKILL some mid-run (-workload selects one, default all)")
		transport   = flag.String("transport", "unix", "fleet transport scheme: tcp|unix")
		fleetWorker = flag.String("fleet-worker", "", "internal: join a fleet as this workload's worker")
		join        = flag.String("join", "", "internal: coordinator address to join (fleet worker mode)")
		rank        = flag.Int("rank", 0, "internal: fleet rank (fleet worker mode)")
	)
	flag.Parse()

	if *fleetWorker != "" {
		if err := runFleetWorkerMode(*fleetWorker, *transport, *join, *rank); err != nil {
			fatalf("fleet worker rank %d: %v", *rank, err)
		}
		return
	}
	if *fleet {
		runFleetSoaks(*workload, *transport, *dir, *kills, *killMax, *seed, *quick, *obsListen)
		return
	}

	if *worker {
		var sink obs.Sink
		srv, err := obs.ServeTelemetry(&sink, *obsListen)
		if err != nil {
			fatalf("worker %s: %v", *workload, err)
		}
		defer srv.Close()
		state, err := runWorkload(*workload, *dir, *quick, sink)
		if err != nil {
			fatalf("worker %s: %v", *workload, err)
		}
		if err := writeAtomic(*out, state); err != nil {
			fatalf("worker %s: %v", *workload, err)
		}
		return
	}

	list := workloads
	if *workload != "all" {
		if !validWorkload(*workload) {
			fatalf("unknown workload %q (want %s)", *workload, strings.Join(workloads, ", "))
		}
		list = []string{*workload}
	}
	scratch := *dir
	if scratch == "" {
		var err error
		if scratch, err = os.MkdirTemp("", "chaos-"); err != nil {
			fatalf("%v", err)
		}
		defer os.RemoveAll(scratch)
	}
	self, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}

	// The driver's kill/resume decisions are published as structured
	// JSON-lines events on stderr, so soak logs are machine-greppable
	// next to the workers' own telemetry.
	log := obs.NewLogger(obs.WithLogWriter(os.Stderr))
	rng := rand.New(rand.NewSource(*seed))
	failed := 0
	for _, wl := range list {
		if err := soak(self, wl, scratch, *kills, *killMax, *quick, rng, log, *obsListen); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %s: FAIL: %v\n", wl, err)
			failed++
			continue
		}
		fmt.Printf("chaos: %s: PASS\n", wl)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runFleetSoaks drives the fleet workloads and exits non-zero on any
// failure.
func runFleetSoaks(workload, scheme, dir string, kills int, killMax time.Duration, seed int64, quick bool, obsListen string) {
	list := fleetWorkloads
	if workload != "all" {
		ok := false
		for _, w := range fleetWorkloads {
			ok = ok || w == workload
		}
		if !ok {
			fatalf("unknown fleet workload %q (want %s)", workload, strings.Join(fleetWorkloads, ", "))
		}
		list = []string{workload}
	}
	scratch := dir
	if scratch == "" {
		var err error
		if scratch, err = os.MkdirTemp("", "chaos-fleet-"); err != nil {
			fatalf("%v", err)
		}
		defer os.RemoveAll(scratch)
	} else if err := os.MkdirAll(scratch, 0o755); err != nil {
		fatalf("%v", err)
	}
	self, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	// In fleet mode the coordinator (and its net.* counters — rejoins,
	// deaths, lease expiries) lives in the driver, so the driver serves
	// the telemetry.
	var sink obs.Sink
	srv, err := obs.ServeTelemetry(&sink, obsListen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	log := obs.NewLogger(obs.WithLogWriter(os.Stderr))
	rng := rand.New(rand.NewSource(seed))
	failed := 0
	for _, wl := range list {
		if err := fleetSoak(self, wl, scratch, scheme, kills, killMax, quick, rng, log, sink); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: fleet-%s: FAIL: %v\n", wl, err)
			failed++
			continue
		}
		fmt.Printf("chaos: fleet-%s: PASS\n", wl)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// soak drives one workload through the kill–resume cycle and compares
// the survivor's state with the clean in-process reference.
func soak(self, wl, scratch string, kills int, killMax time.Duration, quick bool, rng *rand.Rand, log *obs.Logger, obsListen string) error {
	ref, err := runWorkload(wl, "", quick, obs.Sink{}) // clean reference, no durability
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	wlDir := filepath.Join(scratch, wl)
	if err := os.MkdirAll(wlDir, 0o755); err != nil {
		return err
	}
	stateFile := filepath.Join(wlDir, "state.bin")
	workerArgs := func() []string {
		args := []string{"-worker", "-workload", wl, "-dir", wlDir, "-out", stateFile}
		if quick {
			args = append(args, "-quick")
		}
		if obsListen != "" {
			// Workers run strictly one at a time (each is dead before the
			// next launches), so they can all serve the same address.
			args = append(args, "-obs-listen", obsListen)
		}
		return args
	}

	delivered := 0
	for k := 0; k < kills; k++ {
		delay := time.Duration(rng.Int63n(int64(killMax)-1e6) + 1e6) // [1ms, killMax)
		cmd := exec.Command(self, workerArgs()...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		log.Event(obs.LevelInfo, "chaos", "worker launched "+wl,
			obs.Arg{Key: "attempt", Value: int64(k + 1)},
			obs.Arg{Key: "pid", Value: int64(cmd.Process.Pid)},
			obs.Arg{Key: "resumed", Value: int64(delivered)})
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			// Finished before the kill landed: the run is simply short;
			// later kills would only re-verify a completed state.
			if err != nil {
				return fmt.Errorf("worker exited with %w before kill %d", err, k+1)
			}
			log.Event(obs.LevelInfo, "chaos", "worker finished before kill "+wl,
				obs.Arg{Key: "attempt", Value: int64(k + 1)})
			k = kills
		case <-time.After(delay):
			_ = cmd.Process.Kill() // SIGKILL: no cleanup, no final save
			<-done
			delivered++
			log.Event(obs.LevelWarn, "chaos", "worker SIGKILLed "+wl,
				obs.Arg{Key: "kill", Value: int64(delivered)},
				obs.Arg{Key: "pid", Value: int64(cmd.Process.Pid)},
				obs.Arg{Key: "delay_ms", Value: delay.Milliseconds()})
		}
	}

	final := exec.Command(self, workerArgs()...)
	final.Stderr = os.Stderr
	log.Event(obs.LevelInfo, "chaos", "final resume "+wl,
		obs.Arg{Key: "kills_delivered", Value: int64(delivered)})
	if err := final.Run(); err != nil {
		return fmt.Errorf("final run: %w", err)
	}
	got, err := os.ReadFile(stateFile)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, ref) {
		return fmt.Errorf("state after %d kills differs from the clean reference (%d vs %d bytes)",
			delivered, len(got), len(ref))
	}
	fmt.Printf("chaos: %s: %d kills delivered, state identical (%d bytes)\n", wl, delivered, len(got))
	return nil
}

// runWorkload executes one workload to completion and returns its
// deterministic final-state bytes. An empty dir disables durability
// (the clean reference); otherwise the run checkpoints into dir and
// resumes whatever snapshots a killed predecessor left there.
func runWorkload(name, dir string, quick bool, sink obs.Sink) ([]byte, error) {
	switch name {
	case "sandpile":
		ck, err := checkpointer(dir, "chaos-sandpile", 40, sink)
		if err != nil {
			return nil, err
		}
		size, grains := 192, uint32(900000)
		if quick {
			size, grains = 128, 300000
		}
		g := sandpile.Center(grains).Build(size, size, nil)
		res, err := engine.Run("lazy-sync", g, engine.Params{
			TileH: 16, TileW: 16, Workers: 4, Ckpt: ck, Obs: sink,
		})
		if err != nil {
			return nil, err
		}
		return sandpileState(res.Iterations, res.Topples, res.Absorbed, g), nil

	case "sandpile-faults":
		ck, err := checkpointer(dir, "chaos-ghost", 2, sink)
		if err != nil {
			return nil, err
		}
		// Crash-only plan: message faults just add retransmit sleeps,
		// which soak wall-clock without exercising anything durable.
		plan := &fault.Plan{Seed: 7, Crashes: []fault.Crash{{Rank: 1, Round: 3}}}
		size, grains := 144, uint32(200000)
		if quick {
			size, grains = 96, 80000
		}
		g := sandpile.Center(grains).Build(size, size, nil)
		rep, err := ghost.New(g,
			ghost.WithRanks(3), ghost.WithWidth(2),
			ghost.WithFaults(plan), ghost.WithHeartbeat(300*time.Millisecond),
			ghost.WithCheckpoint(ck), ghost.WithObs(sink),
		).Run()
		if err != nil {
			return nil, err
		}
		return sandpileState(rep.Iterations, rep.Topples, rep.Absorbed, g), nil

	case "wfsim":
		ck, err := checkpointer(dir, "chaos-wfsim", 200, sink)
		if err != nil {
			return nil, err
		}
		sc := wfsched.Tab2Scenario()
		sc.Obs = sink
		choices := wfsched.Tab2Choices(sc.Workflow)
		if quick {
			// All-or-nothing per level: 2^depth placements instead of
			// quartiles on the wide levels.
			for l := range choices {
				choices[l] = []float64{0, 1}
			}
		}
		results, err := wfsched.EvaluateFractionsCheckpointed(sc, choices, ck, 200)
		if err != nil {
			return nil, err
		}
		var e ckpt.Enc
		for i := range results {
			o := &results[i].Outcome
			e.F64(o.Makespan)
			e.F64(o.CO2)
			e.F64(o.EnergyLocalKWh)
			e.F64(o.EnergyCloudKWh)
			e.I64(int64(o.TasksLocal))
			e.I64(int64(o.TasksCloud))
		}
		return e.Bytes(), nil

	case "wordcount":
		var spill *mapreduce.Spill[string, int]
		if dir != "" {
			spill = mapreduce.NewStringIntSpill(dir, "chaos-wc")
		}
		lines := 4000
		if quick {
			lines = 1200
		}
		job := wordCountJob(spill)
		job.Config.Obs = sink
		out, _, err := job.Run(chaosCorpus(lines))
		if err != nil {
			return nil, err
		}
		return []byte(strings.Join(out, "\n")), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func checkpointer(dir, name string, every int64, sink obs.Sink) (*ckpt.Checkpointer, error) {
	if dir == "" {
		return nil, nil
	}
	store, err := ckpt.Open(dir, name, ckpt.WithObs(sink))
	if err != nil {
		return nil, err
	}
	return ckpt.NewCheckpointer(store, every, true), nil
}

// sandpileState serializes a run's totals plus the stabilized cells.
func sandpileState(iters int, topples, absorbed uint64, g *grid.Grid) []byte {
	var e ckpt.Enc
	e.U64(uint64(iters))
	e.U64(topples)
	e.U64(absorbed)
	for y := 0; y < g.H(); y++ {
		for _, v := range g.Row(y) {
			e.U32(v)
		}
	}
	return e.Bytes()
}

func wordCountJob(spill *mapreduce.Spill[string, int]) *mapreduce.Job[string, string, int, string] {
	return &mapreduce.Job[string, string, int, string]{
		Name: "chaos-wc",
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Reduce: func(k string, vs []int, emit func(string)) error {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(fmt.Sprintf("%s %d", k, sum))
			return nil
		},
		Config: mapreduce.Config[string]{MapTasks: 16, ReduceTasks: 4},
		Spill:  spill,
	}
}

// chaosCorpus is a deterministic pseudo-text corpus for the wordcount
// workload.
func chaosCorpus(n int) []string {
	rng := rand.New(rand.NewSource(99))
	vocab := []string{"peachy", "parallel", "assignments", "sandpile", "montage",
		"ghost", "cells", "carbon", "treasure", "hunt", "stripes", "workflow"}
	lines := make([]string, n)
	for i := range lines {
		var b strings.Builder
		for w := 0; w < 6+rng.Intn(10); w++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		lines[i] = b.String()
	}
	return lines
}

// writeAtomic publishes the state file via temp + rename so a kill
// mid-write can never leave a torn file for the driver to read.
func writeAtomic(path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("missing -out")
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func validWorkload(name string) bool {
	for _, w := range workloads {
		if w == name {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
	os.Exit(1)
}
