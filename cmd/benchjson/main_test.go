package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sched
cpu: some cpu
BenchmarkPoolStatic-8   	    1234	    972345 ns/op
BenchmarkPoolStealing-8 	     500	   2000000 ns/op	     128 B/op	       3 allocs/op
BenchmarkNoSuffix       	      10	 100000000 ns/op
PASS
ok  	repro/internal/sched	2.345s
`

func TestParse(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.GOOS != "linux" || b.GOARCH != "amd64" {
		t.Fatalf("env = %q/%q", b.GOOS, b.GOARCH)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(b.Benchmarks), b.Names())
	}
	e := b.Benchmarks["BenchmarkPoolStatic"]
	if e.NsPerOp != 972345 || e.Iterations != 1234 {
		t.Fatalf("PoolStatic = %+v", e)
	}
	s := b.Benchmarks["BenchmarkPoolStealing"]
	if s.BytesPerOp == nil || *s.BytesPerOp != 128 || s.AllocsPerOp == nil || *s.AllocsPerOp != 3 {
		t.Fatalf("PoolStealing extras = %+v", s)
	}
	if _, ok := b.Benchmarks["BenchmarkNoSuffix"]; !ok {
		t.Fatal("suffix-less benchmark not parsed")
	}
}

func baselineOf(pairs map[string]float64) Baseline {
	b := Baseline{Benchmarks: map[string]Entry{}}
	for n, ns := range pairs {
		b.Benchmarks[n] = Entry{NsPerOp: ns, Iterations: 1}
	}
	return b
}

func TestCompareDetectsRegressionsAndImprovements(t *testing.T) {
	old := baselineOf(map[string]float64{
		"BenchmarkA": 1000, // will regress 20%
		"BenchmarkB": 1000, // will improve 50%
		"BenchmarkC": 1000, // exactly +10%: not a regression
		"BenchmarkD": 1000, // removed
	})
	new := baselineOf(map[string]float64{
		"BenchmarkA": 1200,
		"BenchmarkB": 500,
		"BenchmarkC": 1100,
		"BenchmarkE": 42, // added
	})
	deltas := Compare(old, new)
	if len(deltas) != 5 {
		t.Fatalf("got %d deltas, want 5: %+v", len(deltas), deltas)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if !byName["BenchmarkA"].Regressed(10) {
		t.Fatalf("A at +20%% not flagged: %+v", byName["BenchmarkA"])
	}
	if byName["BenchmarkB"].Regressed(10) || byName["BenchmarkB"].Pct != -50 {
		t.Fatalf("B improvement misreported: %+v", byName["BenchmarkB"])
	}
	if byName["BenchmarkC"].Regressed(10) {
		t.Fatalf("C at exactly +10%% must not be a regression: %+v", byName["BenchmarkC"])
	}
	if byName["BenchmarkD"].InBoth || byName["BenchmarkE"].InBoth {
		t.Fatal("added/removed benchmarks marked as present in both")
	}
	if byName["BenchmarkD"].Regressed(10) || byName["BenchmarkE"].Regressed(10) {
		t.Fatal("added/removed benchmarks must never count as regressions")
	}

	var sb strings.Builder
	regressed := RenderCompare(&sb, deltas, 10)
	if len(regressed) != 1 || regressed[0] != "BenchmarkA" {
		t.Fatalf("regressed = %v, want [BenchmarkA]", regressed)
	}
	out := sb.String()
	for _, want := range []string{"<< regression", "added", "removed", "-50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// Summarize must classify one-sided benchmarks as added/removed and
// keep them out of the compared count — the shape a PR landing new
// benchmarks produces against an older baseline.
func TestSummarizeCountsOneSidedBenchmarks(t *testing.T) {
	old := baselineOf(map[string]float64{
		"BenchmarkShared1": 100,
		"BenchmarkShared2": 200,
		"BenchmarkGone":    300,
	})
	new := baselineOf(map[string]float64{
		"BenchmarkShared1": 110,
		"BenchmarkShared2": 190,
		"BenchmarkNew1":    10,
		"BenchmarkNew2":    20,
	})
	deltas := Compare(old, new)
	compared, added, removed := Summarize(deltas)
	if compared != 2 || added != 2 || removed != 1 {
		t.Fatalf("Summarize = (%d compared, %d added, %d removed), want (2, 2, 1)",
			compared, added, removed)
	}
	// And none of the one-sided entries may trip the gate.
	var sb strings.Builder
	if regressed := RenderCompare(&sb, deltas, 10); len(regressed) != 0 {
		t.Fatalf("one-sided benchmarks tripped the gate: %v", regressed)
	}
}

func TestCompareThreshold(t *testing.T) {
	old := baselineOf(map[string]float64{"BenchmarkX": 100})
	new := baselineOf(map[string]float64{"BenchmarkX": 106})
	d := Compare(old, new)[0]
	if d.Regressed(10) {
		t.Fatal("+6% flagged at 10% threshold")
	}
	if !d.Regressed(5) {
		t.Fatal("+6% not flagged at 5% threshold")
	}
}

func TestParseKeepsFasterDuplicate(t *testing.T) {
	in := "BenchmarkX-4 100 2000 ns/op\nBenchmarkX-4 100 1500 ns/op\n"
	b, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Benchmarks["BenchmarkX"].NsPerOp; got != 1500 {
		t.Fatalf("kept %v ns/op, want the faster 1500", got)
	}
}
