package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sched
cpu: some cpu
BenchmarkPoolStatic-8   	    1234	    972345 ns/op
BenchmarkPoolStealing-8 	     500	   2000000 ns/op	     128 B/op	       3 allocs/op
BenchmarkNoSuffix       	      10	 100000000 ns/op
PASS
ok  	repro/internal/sched	2.345s
`

func TestParse(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.GOOS != "linux" || b.GOARCH != "amd64" {
		t.Fatalf("env = %q/%q", b.GOOS, b.GOARCH)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(b.Benchmarks), b.Names())
	}
	e := b.Benchmarks["BenchmarkPoolStatic"]
	if e.NsPerOp != 972345 || e.Iterations != 1234 {
		t.Fatalf("PoolStatic = %+v", e)
	}
	s := b.Benchmarks["BenchmarkPoolStealing"]
	if s.BytesPerOp == nil || *s.BytesPerOp != 128 || s.AllocsPerOp == nil || *s.AllocsPerOp != 3 {
		t.Fatalf("PoolStealing extras = %+v", s)
	}
	if _, ok := b.Benchmarks["BenchmarkNoSuffix"]; !ok {
		t.Fatal("suffix-less benchmark not parsed")
	}
}

func TestParseKeepsFasterDuplicate(t *testing.T) {
	in := "BenchmarkX-4 100 2000 ns/op\nBenchmarkX-4 100 1500 ns/op\n"
	b, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Benchmarks["BenchmarkX"].NsPerOp; got != 1500 {
		t.Fatalf("kept %v ns/op, want the faster 1500", got)
	}
}
