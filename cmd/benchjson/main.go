// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON baseline, so successive PRs can diff ns/op
// per benchmark instead of eyeballing logs:
//
//	go test -run '^$' -bench . -benchtime=100ms ./... | benchjson > BENCH_baseline.json
//	benchjson -in bench.log -out BENCH_baseline.json
//
// The GOMAXPROCS suffix (-8) is stripped from names so baselines
// recorded on different machines stay comparable by key.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one benchmark's measurements.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	Iterations  int64   `json:"iterations"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Baseline is the file format: benchmark name -> entry, plus the
// environment the numbers were recorded in.
type Baseline struct {
	GoVersion  string           `json:"go_version,omitempty"`
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
	extraStat = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)
	metaLine  = regexp.MustCompile(`^(goos|goarch|pkg|cpu): (.+)$`)
)

// Parse scans go-test bench output and collects entries. Non-bench
// lines (PASS, ok, pkg headers) are ignored; a benchmark appearing
// twice (e.g. from -count) keeps the faster run.
func Parse(r io.Reader) (Baseline, error) {
	b := Baseline{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := metaLine.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				b.GOOS = m[2]
			case "goarch":
				b.GOARCH = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return b, fmt.Errorf("benchjson: bad ns/op in %q", line)
		}
		e := Entry{NsPerOp: ns, Iterations: iters}
		for _, s := range extraStat.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(s[1], 64)
			if err != nil {
				continue
			}
			n := int64(v)
			if s[2] == "B/op" {
				e.BytesPerOp = &n
			} else {
				e.AllocsPerOp = &n
			}
		}
		if old, ok := b.Benchmarks[m[1]]; !ok || e.NsPerOp < old.NsPerOp {
			b.Benchmarks[m[1]] = e
		}
	}
	return b, sc.Err()
}

// Names returns the benchmark names in sorted order.
func (b Baseline) Names() []string {
	names := make([]string, 0, len(b.Benchmarks))
	for n := range b.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON baseline file (default stdout)")
	goVersion := flag.String("go-version", "", "record this Go version in the baseline")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	b, err := Parse(r)
	if err != nil {
		fatalf("%v", err)
	}
	if len(b.Benchmarks) == 0 {
		fatalf("no benchmark lines found")
	}
	b.GoVersion = *goVersion

	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(b.Benchmarks), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
