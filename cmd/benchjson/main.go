// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON baseline, so successive PRs can diff ns/op
// per benchmark instead of eyeballing logs:
//
//	go test -run '^$' -bench . -benchtime=100ms ./... | benchjson > BENCH_baseline.json
//	benchjson -in bench.log -out BENCH_baseline.json
//
// It also diffs two recorded baselines, printing per-benchmark ns/op
// deltas and exiting nonzero when any benchmark regressed beyond the
// threshold (default 10%):
//
//	benchjson -compare BENCH_baseline.json BENCH_pr2.json
//	benchjson -compare -threshold 5 old.json new.json
//
// The GOMAXPROCS suffix (-8) is stripped from names so baselines
// recorded on different machines stay comparable by key.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// Entry is one benchmark's measurements.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	Iterations  int64   `json:"iterations"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Baseline is the file format: benchmark name -> entry, plus the
// environment the numbers were recorded in.
type Baseline struct {
	GoVersion  string           `json:"go_version,omitempty"`
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
	extraStat = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)
	metaLine  = regexp.MustCompile(`^(goos|goarch|pkg|cpu): (.+)$`)
)

// Parse scans go-test bench output and collects entries. Non-bench
// lines (PASS, ok, pkg headers) are ignored; a benchmark appearing
// twice (e.g. from -count) keeps the faster run.
func Parse(r io.Reader) (Baseline, error) {
	b := Baseline{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := metaLine.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				b.GOOS = m[2]
			case "goarch":
				b.GOARCH = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return b, fmt.Errorf("benchjson: bad ns/op in %q", line)
		}
		e := Entry{NsPerOp: ns, Iterations: iters}
		for _, s := range extraStat.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(s[1], 64)
			if err != nil {
				continue
			}
			n := int64(v)
			if s[2] == "B/op" {
				e.BytesPerOp = &n
			} else {
				e.AllocsPerOp = &n
			}
		}
		if old, ok := b.Benchmarks[m[1]]; !ok || e.NsPerOp < old.NsPerOp {
			b.Benchmarks[m[1]] = e
		}
	}
	return b, sc.Err()
}

// Names returns the benchmark names in sorted order.
func (b Baseline) Names() []string {
	names := make([]string, 0, len(b.Benchmarks))
	for n := range b.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load reads a baseline JSON file.
func Load(path string) (Baseline, error) {
	var b Baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		return b, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	return b, nil
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name     string
	Old, New float64 // ns/op; 0 when absent on that side
	Pct      float64 // (new-old)/old * 100; meaningless unless InBoth
	InBoth   bool
}

// Regressed reports whether the delta is a slowdown beyond
// thresholdPct percent.
func (d Delta) Regressed(thresholdPct float64) bool {
	return d.InBoth && d.Pct > thresholdPct
}

// Compare diffs two baselines by benchmark name, sorted. Benchmarks
// present on only one side are reported with InBoth=false and never
// count as regressions.
func Compare(old, new Baseline) []Delta {
	names := map[string]bool{}
	for n := range old.Benchmarks {
		names[n] = true
	}
	for n := range new.Benchmarks {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	out := make([]Delta, 0, len(sorted))
	for _, n := range sorted {
		o, hasOld := old.Benchmarks[n]
		e, hasNew := new.Benchmarks[n]
		d := Delta{Name: n, Old: o.NsPerOp, New: e.NsPerOp, InBoth: hasOld && hasNew}
		if d.InBoth && o.NsPerOp > 0 {
			d.Pct = (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		out = append(out, d)
	}
	return out
}

// Summarize counts deltas by kind: benchmarks present in both
// baselines (the only ones that can regress), added (new-only), and
// removed (old-only). New benchmarks landing alongside a PR must show
// up as "added" in the gate's summary, not fail it.
func Summarize(deltas []Delta) (compared, added, removed int) {
	for _, d := range deltas {
		switch {
		case d.InBoth:
			compared++
		case d.Old == 0:
			added++
		default:
			removed++
		}
	}
	return compared, added, removed
}

// RenderCompare formats the deltas as an aligned table and returns the
// names of benchmarks regressed beyond thresholdPct.
func RenderCompare(w io.Writer, deltas []Delta, thresholdPct float64) []string {
	var regressed []string
	fmt.Fprintf(w, "%-52s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range deltas {
		switch {
		case !d.InBoth && d.Old == 0:
			fmt.Fprintf(w, "%-52s %15s %15.0f %9s\n", d.Name, "-", d.New, "added")
		case !d.InBoth:
			fmt.Fprintf(w, "%-52s %15.0f %15s %9s\n", d.Name, d.Old, "-", "removed")
		default:
			mark := ""
			if d.Regressed(thresholdPct) {
				mark = "  << regression"
				regressed = append(regressed, d.Name)
			}
			fmt.Fprintf(w, "%-52s %15.0f %15.0f %+8.1f%%%s\n", d.Name, d.Old, d.New, d.Pct, mark)
		}
	}
	return regressed
}

func runCompare(oldPath, newPath string, thresholdPct float64) int {
	oldB, err := Load(oldPath)
	if err != nil {
		fatalf("%v", err)
	}
	newB, err := Load(newPath)
	if err != nil {
		fatalf("%v", err)
	}
	deltas := Compare(oldB, newB)
	regressed := RenderCompare(os.Stdout, deltas, thresholdPct)
	compared, added, removed := Summarize(deltas)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed > %.1f%%: %v\n",
			len(regressed), thresholdPct, regressed)
		return 1
	}
	fmt.Printf("no regressions > %.1f%% (%d compared, %d added, %d removed)\n",
		thresholdPct, compared, added, removed)
	return 0
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON baseline file (default stdout)")
	goVersion := flag.String("go-version", "", "record this Go version in the baseline")
	compare := flag.Bool("compare", false, "compare two baseline JSON files (args: old.json new.json); exit 1 on regressions")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -compare")
	obsListen := flag.String("obs-listen", "", "serve live telemetry (/metrics /healthz /progress /events /debug/pprof/) on this address, e.g. :9090 (:0 picks a port)")
	flag.Parse()

	var sink obs.Sink
	srv, err := obs.ServeTelemetry(&sink, *obsListen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two args: old.json new.json")
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	b, err := Parse(r)
	if err != nil {
		fatalf("%v", err)
	}
	if len(b.Benchmarks) == 0 {
		fatalf("no benchmark lines found")
	}
	sink.Metrics.Counter("benchjson.benchmarks").Add(int64(len(b.Benchmarks)))
	sink.Progress.Update("benchjson", obs.F("benchmarks", float64(len(b.Benchmarks))))
	b.GoVersion = *goVersion

	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(b.Benchmarks), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
