// Command sandpile runs the Abelian-sandpile engine from the command
// line, the way EASYPAP's students invoke kernel variants: pick a
// variant, a configuration, a grid size, tiling and scheduling
// parameters, and optionally write the stable configuration as a PNG
// or dump a trace summary of one iteration.
//
// The flags build a job spec and run it through the same
// runners.Sandpile adapter the peachyd job server executes, so a CLI
// invocation and an HTTP submission with equal parameters are
// literally the same code path; the CLI's extras (PNG/GIF/trace
// artifacts) ride on the adapter's hook fields.
//
// Examples:
//
//	sandpile -variant seq-async -config center -grains 25000 -size 128 -png fig1a.png
//	sandpile -variant lazy-sync -config sparse -size 2048 -tile 32 -trace-iter 500
//	sandpile -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/ghost"
	"repro/internal/grid"
	"repro/internal/hetero"
	"repro/internal/img"
	"repro/internal/job"
	"repro/internal/job/runners"
	pnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/sandpile"
	"repro/internal/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list variants and exit")
		variant   = flag.String("variant", "seq-async", "kernel variant (see -list)")
		config    = flag.String("config", "center", "initial configuration: center|uniform|sparse|random")
		grains    = flag.Uint("grains", 25000, "grains for center/uniform/sparse piles")
		size      = flag.Int("size", 128, "grid edge length")
		tile      = flag.Int("tile", 32, "tile edge for tiled variants")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		policy    = flag.String("policy", "dynamic", "schedule: static|cyclic|dynamic|guided|stealing")
		seed      = flag.Int64("seed", 42, "seed for stochastic configurations")
		maxIters  = flag.Int("max-iters", 0, "iteration cap (0 = run to stability)")
		png       = flag.String("png", "", "write the final grid as a PNG")
		traceIter = flag.Int("trace-iter", 0, "print a trace summary of this iteration")
		traceOut  = flag.String("trace-out", "", "save the recorded trace (JSON lines) for off-line exploration")
		timeline  = flag.Bool("timeline", false, "render an ASCII timeline of the traced iteration")
		gifOut    = flag.String("gif", "", "write an animated GIF of the evolution")
		gifEvery  = flag.Int("gif-every", 20, "capture a GIF frame every N iterations")
		metrics   = flag.Bool("metrics", false, "print a metrics snapshot (JSON) after the run")
		traceFile = flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
		obsListen = flag.String("obs-listen", "", "serve live telemetry (/metrics /healthz /progress /events /debug/pprof/) on this address, e.g. :9090 (:0 picks a port)")
		ranks     = flag.Int("ranks", 0, "run the simulated-MPI ghost-cell engine with N ranks instead of a variant")
		ghostW    = flag.Int("ghost-width", 1, "ghost-cell band width for -ranks mode")
		heteroRun = flag.Bool("hetero", false, "run the hybrid CPU+device engine instead of a variant")
		devWork   = flag.Int("device-workers", 4, "simulated device parallelism for -hetero")
		faults    = flag.String("faults", "", "fault plan for -ranks/-hetero, e.g. seed=7,crash=1@3 or seed=7,stall=5 (see internal/fault)")
		ckptDir   = flag.String("checkpoint", "", "write durable snapshots into this directory")
		resumeDir = flag.String("resume", "", "resume from the newest snapshot in this directory (and keep checkpointing there)")
		ckptEvery = flag.Int64("checkpoint-every", 25, "iterations (rounds for -ranks) between snapshots")
		tscheme   = flag.String("transport", "unix", "fleet transport scheme for -listen/-join: tcp|unix|chan")
		listen    = flag.String("listen", "", "run -ranks as a fleet coordinator bound to this address; rank workers join over -transport (start them with -join)")
		joinAddr  = flag.String("join", "", "run as a fleet rank worker joining the coordinator at this address")
		rank      = flag.Int("rank", 0, "this worker's rank (with -join)")
	)
	flag.Parse()

	if *joinAddr != "" {
		if err := runFleetWorker(*tscheme, *joinAddr, *rank); err != nil {
			fatalf("fleet worker rank %d: %v", *rank, err)
		}
		return
	}

	if *list {
		for _, name := range engine.Names() {
			v, _ := engine.Lookup(name)
			fmt.Printf("%-18s %s\n", name, v.Description)
		}
		return
	}

	params := runners.SandpileParams{
		Variant: *variant, Config: *config, Grains: uint32(*grains),
		Size: *size, Tile: *tile, Workers: *workers, Policy: *policy,
		Seed: seed, MaxIters: *maxIters,
		Ranks: *ranks, GhostWidth: *ghostW,
		Hetero: *heteroRun, DeviceWorkers: *devWork,
		Faults: *faults,
	}
	raw, err := json.Marshal(params)
	if err != nil {
		fatalf("%v", err)
	}
	spec := job.Spec{APIVersion: job.APIVersion, Kind: "sandpile", Tenant: "cli", Params: raw}
	adapter := &runners.Sandpile{}
	if err := adapter.Validate(spec); err != nil {
		fatalf("%v", err)
	}
	cfg, _ := params.BuildConfig()

	sink, flush := obs.Setup(*metrics, *traceFile)
	srv, err := obs.ServeTelemetry(&sink, *obsListen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	ck, err := ckpt.ForCLI("sandpile", *ckptDir, *resumeDir, *ckptEvery, sink)
	if err != nil {
		fatalf("%v", err)
	}
	if ck != nil && *heteroRun {
		fatalf("-checkpoint/-resume are not supported with -hetero")
	}

	if *listen != "" {
		// Fleet coordinator: the ghost ranks are worker processes that
		// join over the socket transport instead of goroutines.
		if *ranks <= 0 {
			fatalf("-listen needs -ranks N")
		}
		if *faults != "" {
			fatalf("fleet mode injects no simulated faults; SIGKILL the workers instead")
		}
		tr, err := pnet.New(*tscheme)
		if err != nil {
			fatalf("%v", err)
		}
		g := cfg.Build(*size, *size, rand.New(rand.NewSource(*seed)))
		fc := &pnet.FleetConfig{Transport: tr, Listen: *listen, Obs: sink}
		fmt.Printf("fleet coordinator on %s (%s); start workers with: sandpile -join %s -transport %s -rank R\n",
			*listen, *tscheme, *listen, *tscheme)
		start := time.Now()
		rep, err := ghost.New(g,
			ghost.WithRanks(*ranks), ghost.WithWidth(*ghostW),
			ghost.WithMaxIters(*maxIters), ghost.WithFleet(fc),
			ghost.WithObs(sink), ghost.WithCheckpoint(ck),
		).Run()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("ghost fleet on %s %dx%d: %v in %s\n",
			cfg.Name, *size, *size, rep, time.Since(start).Round(time.Microsecond))
		if *png != "" {
			if err := img.SavePNG(*png, img.Sandpile(g, 4)); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("wrote %s\n", *png)
		}
		if sink.Enabled() {
			if err := flush(os.Stdout); err != nil {
				fatalf("%v", err)
			}
		}
		return
	}

	// CLI-only artifacts hang off the adapter's hook fields.
	var rec *trace.Recorder
	if *traceIter > 0 {
		rec = trace.NewRecorder()
		adapter.Recorder = rec
		adapter.TraceFrom = *traceIter
		adapter.TraceTo = *traceIter
	}
	if *traceOut != "" && rec == nil {
		fatalf("-trace-out requires -trace-iter")
	}
	var frames []*grid.Grid
	if *gifOut != "" {
		if *gifEvery < 1 {
			*gifEvery = 1
		}
		adapter.OnIteration = func(st engine.IterStats) {
			if st.Iteration%*gifEvery == 0 || st.Changes == 0 {
				frames = append(frames, st.Grid.Clone())
			}
		}
	}
	var final *grid.Grid
	adapter.GridSink = func(g *grid.Grid) { final = g }

	prog := sink.Progress
	if prog == nil {
		prog = obs.NewProgress(nil)
	}
	ctx := job.WithEnv(context.Background(), job.Env{Obs: sink, Ckpt: ck})

	start := time.Now()
	res, err := adapter.Run(ctx, spec, prog)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)
	var out runners.SandpileOutput
	if err := json.Unmarshal(res.Output, &out); err != nil {
		fatalf("%v", err)
	}

	result := sandpile.Result{Iterations: out.Iterations, Topples: out.Topples, Absorbed: out.Absorbed}
	switch out.Mode {
	case "ghost":
		rep := ghost.Report{
			Result: result,
			Ranks:  out.Ghost.Ranks, GhostWidth: out.Ghost.GhostWidth,
			Exchanges: out.Ghost.Exchanges, Messages: out.Ghost.Messages,
			BytesSent: out.Ghost.BytesSent, RedundantCells: out.Ghost.RedundantCells,
			Recoveries: out.Ghost.Recoveries,
		}
		fmt.Printf("ghost on %s %dx%d: %v in %s\n", cfg.Name, *size, *size, rep, elapsed.Round(time.Microsecond))
		for _, line := range out.Ghost.FaultSchedule {
			fmt.Printf("fault: %s\n", line)
		}
	case "hetero":
		rep := hetero.Report{
			Result:      result,
			DeviceTiles: out.Hetero.DeviceTiles, CPUTiles: out.Hetero.CPUTiles,
			FinalFraction: out.Hetero.FinalFraction, DeviceStalled: out.Hetero.DeviceStalled,
		}
		fmt.Printf("hetero on %s %dx%d: %v in %s\n", cfg.Name, *size, *size, rep, elapsed.Round(time.Microsecond))
	default:
		fmt.Printf("%s on %s %dx%d: %v in %s\n", *variant, cfg.Name, *size, *size, result, elapsed.Round(time.Microsecond))
		fmt.Printf("grains: initial=%d final=%d cells by value: 0:%d 1:%d 2:%d 3:%d stable=%v\n",
			out.InitialGrains, out.FinalGrains, out.Cells[0], out.Cells[1], out.Cells[2], out.Cells[3], out.Stable)
	}

	if rec != nil {
		st := trace.Iteration(rec.Events(), *traceIter)
		fmt.Printf("iteration %d: tasks=%d active=%d cells=%d workers=%d imbalance=%.3f span=%s\n",
			st.Iteration, st.Tasks, st.ActiveTile, st.Cells, st.Workers, st.Imbalance, st.Span)
		tl := grid.NewTiling(*size, *size, *tile, *tile)
		owners := trace.TileOwners(rec.Events())
		fmt.Printf("tiles computed in traced window: %d of %d\n", len(owners), tl.NumTiles())
		if *timeline {
			fmt.Print(trace.Timeline(rec.Events(), *traceIter, 72))
		}
		if *traceOut != "" {
			if err := trace.Save(*traceOut, rec); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("wrote trace to %s\n", *traceOut)
		}
	}
	if *png != "" {
		if err := img.SavePNG(*png, img.Sandpile(final, 4)); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *png)
	}
	if *gifOut != "" {
		if err := img.SaveGIF(*gifOut, frames, 4, 4); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d frames)\n", *gifOut, len(frames))
	}
	if sink.Enabled() {
		if err := flush(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *traceFile != "" {
			fmt.Printf("wrote trace to %s\n", *traceFile)
		}
	}
}

// runFleetWorker joins a fleet coordinator as one ghost rank and
// serves rounds until the coordinator stops the run.
func runFleetWorker(scheme, join string, rank int) error {
	tr, err := pnet.New(scheme)
	if err != nil {
		return err
	}
	return ghost.FleetWorker(context.Background(), pnet.WorkerConfig{
		Transport:       tr,
		Join:            join,
		Rank:            rank,
		Backoff:         pnet.Backoff{Base: 25 * time.Millisecond, Max: time.Second, Seed: int64(rank)},
		MaxDialAttempts: 200,
	})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sandpile: "+format+"\n", args...)
	os.Exit(1)
}
