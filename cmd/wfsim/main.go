// Command wfsim is the carbon-footprint workflow simulator: the
// command-line equivalent of the assignment's in-browser simulation
// application. Tab 1 mode simulates the Montage workflow on the local
// cluster with a chosen node count and p-state; Tab 2 mode adds the
// green cloud and per-level placement fractions.
//
// Every mode except -split builds a job spec and runs it through the
// same runners.Wfsim adapter the peachyd job server executes, so a
// CLI invocation and an HTTP submission with equal parameters share
// one code path. -split (the two-group heterogeneity ablation) is a
// research extra that stays a direct library call.
//
// Examples:
//
//	wfsim -nodes 64 -pstate 6                     # Tab 1 baseline
//	wfsim -nodes 21 -pstate 6                     # Tab 1 power-off option
//	wfsim -tab2 -fractions 0.5,0.75,1,1,1,1,1,1,1 # Tab 2 placement
//	wfsim -tab2 -optimize                          # exhaustive optimum
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/job/runners"
	"repro/internal/obs"
	"repro/internal/wfsched"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 64, "Tab 1: powered-on cluster nodes")
		pstate    = flag.Int("pstate", 6, "Tab 1: p-state index 0 (lowest) .. 6 (highest)")
		tab2      = flag.Bool("tab2", false, "use the Tab 2 platform (12 nodes @ p0 + 16 green VMs)")
		fractions = flag.String("fractions", "", "Tab 2: comma-separated per-level cloud fractions")
		allCloud  = flag.Bool("all-cloud", false, "Tab 2: place every task on the cloud")
		optimize  = flag.Bool("optimize", false, "Tab 2: run the exhaustive CO2 optimizer")
		greedy    = flag.Bool("greedy", false, "Tab 2: run the greedy hill-climb optimizer")
		pareto    = flag.Bool("pareto", false, "Tab 2: print the time/CO2 Pareto frontier")
		split     = flag.Bool("split", false, "Tab 1: relax homogeneity — search two-group p-state clusters")
		metrics   = flag.Bool("metrics", false, "print a metrics snapshot (JSON) after the run")
		traceFile = flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
		obsListen = flag.String("obs-listen", "", "serve live telemetry (/metrics /healthz /progress /events /debug/pprof/) on this address, e.g. :9090 (:0 picks a port)")
		faults    = flag.String("faults", "", "host-failure plan, e.g. seed=7,hostfail=0.1,repair=5 (see internal/fault)")
		desWorker = flag.Int("des-workers", 0, "DES kernel workers: >1 runs the optimistic Time Warp engine (byte-identical outcomes), 0/1 the sequential kernel")
		ckptDir   = flag.String("checkpoint", "", "-optimize/-pareto: write sweep snapshots into this directory")
		resumeDir = flag.String("resume", "", "-optimize/-pareto: resume the sweep from this directory")
		ckptEvery = flag.Int64("checkpoint-every", 256, "placements evaluated between sweep snapshots")
	)
	flag.Parse()

	var plan *fault.Plan
	if *faults != "" {
		var err error
		if plan, err = fault.Parse(*faults); err != nil {
			fatalf("%v", err)
		}
	}

	sink, flush := obs.Setup(*metrics, *traceFile)
	srv, err := obs.ServeTelemetry(&sink, *obsListen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	ck, err := ckpt.ForCLI("wfsim", *ckptDir, *resumeDir, *ckptEvery, sink)
	if err != nil {
		fatalf("%v", err)
	}
	if ck != nil && !(*tab2 && (*optimize || *pareto)) {
		fatalf("-checkpoint/-resume apply to the sweep modes: -tab2 with -optimize or -pareto")
	}
	defer func() {
		if !sink.Enabled() {
			return
		}
		if err := flush(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *traceFile != "" {
			fmt.Printf("wrote trace to %s\n", *traceFile)
		}
	}()

	if *split {
		base, _ := wfsched.Tab1Base()
		base.Obs = sink
		base.Faults = plan
		base.DESWorkers = *desWorker
		res, err := wfsched.HeterogeneousAblation(base, wfsched.Tab1MaxNodes, wfsched.Tab1BoundSec)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("homogeneous optimum: %v -> %v\n", res.Homogeneous, res.HomogeneousOutcome)
		fmt.Printf("two-group optimum:   %v -> %v\n", res.Split, res.SplitOutcome)
		fmt.Printf("CO2 saved by heterogeneity: %.1f%%\n",
			100*(1-res.SplitOutcome.CO2/res.HomogeneousOutcome.CO2))
		return
	}

	// Map the flag surface onto the adapter's parameter schema.
	params := runners.WfsimParams{Faults: *faults}
	if *desWorker != 0 {
		params.DESWorkers = desWorker
	}
	switch {
	case !*tab2:
		params.Mode = "tab1"
		params.Nodes, params.PState = nodes, pstate
	case *pareto:
		params.Mode = "pareto"
	case *optimize:
		params.Mode = "optimize"
	case *greedy:
		params.Mode = "greedy"
	default:
		params.Mode = "tab2"
		params.AllCloud = *allCloud
		if *fractions != "" && !*allCloud {
			parts := strings.Split(*fractions, ",")
			fr := make([]float64, len(parts))
			for i, p := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil {
					fatalf("bad fraction %q", p)
				}
				fr[i] = v
			}
			params.Fractions = fr
		}
	}
	raw, err := json.Marshal(params)
	if err != nil {
		fatalf("%v", err)
	}
	spec := job.Spec{
		APIVersion: job.APIVersion, Kind: "wfsim", Tenant: "cli",
		CheckpointEvery: *ckptEvery, Params: raw,
	}
	adapter := &runners.Wfsim{}
	if err := adapter.Validate(spec); err != nil {
		fatalf("%v", err)
	}

	prog := sink.Progress
	if prog == nil {
		prog = obs.NewProgress(nil)
	}
	ctx := job.WithEnv(context.Background(), job.Env{Obs: sink, Ckpt: ck})
	start := time.Now()
	res, err := adapter.Run(ctx, spec, prog)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	var out runners.WfsimOutput
	if err := json.Unmarshal(res.Output, &out); err != nil {
		fatalf("%v", err)
	}

	switch out.Mode {
	case "tab1":
		_, ps := wfsched.Tab1Base()
		cfg := wfsched.ClusterConfig{Nodes: *nodes, PState: *pstate}
		fmt.Printf("Tab 1: %v (%s)\n%v\n", cfg, ps[*pstate], out.Outcome)
		if *out.MeetsBound {
			fmt.Printf("meets the %.0f s bound\n", wfsched.Tab1BoundSec)
		} else {
			fmt.Printf("MISSES the %.0f s bound\n", wfsched.Tab1BoundSec)
		}
	case "pareto":
		fmt.Printf("Pareto frontier over %d placements (in %s):\n", out.Simulations, elapsed)
		fmt.Printf("%10s  %10s  %s\n", "time(s)", "gCO2e", "fractions")
		for _, f := range out.Frontier {
			fmt.Printf("%10.1f  %10.2f  %v\n", f.Makespan, f.CO2, f.Fractions)
		}
	case "optimize":
		fmt.Printf("exhaustive optimum (in %s): fractions=%v\n%v\n", elapsed, out.Fractions, out.Outcome)
	case "greedy":
		fmt.Printf("greedy optimum (%d simulations): fractions=%v\n%v\n", out.Simulations, out.Fractions, out.Outcome)
	default: // tab2
		switch {
		case *allCloud:
			fmt.Printf("all-cloud: %v\n", out.Outcome)
		case len(out.Fractions) > 0:
			fmt.Printf("fractions %v: %v\n", out.Fractions, out.Outcome)
		default:
			fmt.Printf("all-local: %v\n", out.Outcome)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wfsim: "+format+"\n", args...)
	os.Exit(1)
}
