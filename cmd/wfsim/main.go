// Command wfsim is the carbon-footprint workflow simulator: the
// command-line equivalent of the assignment's in-browser simulation
// application. Tab 1 mode simulates the Montage workflow on the local
// cluster with a chosen node count and p-state; Tab 2 mode adds the
// green cloud and per-level placement fractions.
//
// Examples:
//
//	wfsim -nodes 64 -pstate 6                     # Tab 1 baseline
//	wfsim -nodes 21 -pstate 6                     # Tab 1 power-off option
//	wfsim -tab2 -fractions 0.5,0.75,1,1,1,1,1,1,1 # Tab 2 placement
//	wfsim -tab2 -optimize                          # exhaustive optimum
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/wfsched"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 64, "Tab 1: powered-on cluster nodes")
		pstate    = flag.Int("pstate", 6, "Tab 1: p-state index 0 (lowest) .. 6 (highest)")
		tab2      = flag.Bool("tab2", false, "use the Tab 2 platform (12 nodes @ p0 + 16 green VMs)")
		fractions = flag.String("fractions", "", "Tab 2: comma-separated per-level cloud fractions")
		allCloud  = flag.Bool("all-cloud", false, "Tab 2: place every task on the cloud")
		optimize  = flag.Bool("optimize", false, "Tab 2: run the exhaustive CO2 optimizer")
		greedy    = flag.Bool("greedy", false, "Tab 2: run the greedy hill-climb optimizer")
		pareto    = flag.Bool("pareto", false, "Tab 2: print the time/CO2 Pareto frontier")
		split     = flag.Bool("split", false, "Tab 1: relax homogeneity — search two-group p-state clusters")
		metrics   = flag.Bool("metrics", false, "print a metrics snapshot (JSON) after the run")
		traceFile = flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
		obsListen = flag.String("obs-listen", "", "serve live telemetry (/metrics /healthz /progress /events /debug/pprof/) on this address, e.g. :9090 (:0 picks a port)")
		faults    = flag.String("faults", "", "host-failure plan, e.g. seed=7,hostfail=0.1,repair=5 (see internal/fault)")
		ckptDir   = flag.String("checkpoint", "", "-optimize/-pareto: write sweep snapshots into this directory")
		resumeDir = flag.String("resume", "", "-optimize/-pareto: resume the sweep from this directory")
		ckptEvery = flag.Int64("checkpoint-every", 256, "placements evaluated between sweep snapshots")
	)
	flag.Parse()

	var plan *fault.Plan
	if *faults != "" {
		var err error
		if plan, err = fault.Parse(*faults); err != nil {
			fatalf("%v", err)
		}
	}

	sink, flush := obs.Setup(*metrics, *traceFile)
	srv, err := obs.ServeTelemetry(&sink, *obsListen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	ck, err := ckpt.ForCLI("wfsim", *ckptDir, *resumeDir, *ckptEvery, sink)
	if err != nil {
		fatalf("%v", err)
	}
	if ck != nil && !(*tab2 && (*optimize || *pareto)) {
		fatalf("-checkpoint/-resume apply to the sweep modes: -tab2 with -optimize or -pareto")
	}
	defer func() {
		if !sink.Enabled() {
			return
		}
		if err := flush(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *traceFile != "" {
			fmt.Printf("wrote trace to %s\n", *traceFile)
		}
	}()

	if *split {
		base, _ := wfsched.Tab1Base()
		base.Obs = sink
		base.Faults = plan
		res, err := wfsched.HeterogeneousAblation(base, wfsched.Tab1MaxNodes, wfsched.Tab1BoundSec)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("homogeneous optimum: %v -> %v\n", res.Homogeneous, res.HomogeneousOutcome)
		fmt.Printf("two-group optimum:   %v -> %v\n", res.Split, res.SplitOutcome)
		fmt.Printf("CO2 saved by heterogeneity: %.1f%%\n",
			100*(1-res.SplitOutcome.CO2/res.HomogeneousOutcome.CO2))
		return
	}

	if !*tab2 {
		base, ps := wfsched.Tab1Base()
		base.Obs = sink
		base.Faults = plan
		if *pstate < 0 || *pstate >= len(ps) {
			fatalf("pstate must be 0..%d", len(ps)-1)
		}
		if *nodes < 1 || *nodes > wfsched.Tab1MaxNodes {
			fatalf("nodes must be 1..%d", wfsched.Tab1MaxNodes)
		}
		cfg := wfsched.ClusterConfig{Nodes: *nodes, PState: *pstate}
		out := wfsched.SimulateCluster(base, ps, cfg)
		fmt.Printf("Tab 1: %v (%s)\n%v\n", cfg, ps[*pstate], out)
		if out.Makespan <= wfsched.Tab1BoundSec {
			fmt.Printf("meets the %.0f s bound\n", wfsched.Tab1BoundSec)
		} else {
			fmt.Printf("MISSES the %.0f s bound\n", wfsched.Tab1BoundSec)
		}
		return
	}

	sc := wfsched.Tab2Scenario()
	sc.Obs = sink
	sc.Faults = plan
	switch {
	case *pareto:
		start := time.Now()
		results, err := wfsched.EvaluateFractionsCheckpointed(sc, wfsched.Tab2Choices(sc.Workflow), ck, int(*ckptEvery))
		if err != nil {
			fatalf("%v", err)
		}
		frontier := wfsched.ParetoFrontier(results)
		fmt.Printf("Pareto frontier over %d placements (in %s):\n",
			len(results), time.Since(start).Round(time.Millisecond))
		fmt.Printf("%10s  %10s  %s\n", "time(s)", "gCO2e", "fractions")
		for _, f := range frontier {
			fmt.Printf("%10.1f  %10.2f  %v\n", f.Outcome.Makespan, f.Outcome.CO2, f.Fractions)
		}
	case *optimize:
		start := time.Now()
		results, err := wfsched.EvaluateFractionsCheckpointed(sc, wfsched.Tab2Choices(sc.Workflow), ck, int(*ckptEvery))
		if err != nil {
			fatalf("%v", err)
		}
		best := results[0]
		for _, r := range results[1:] {
			if r.Outcome.CO2 < best.Outcome.CO2 {
				best = r
			}
		}
		fmt.Printf("exhaustive optimum (in %s): fractions=%v\n%v\n",
			time.Since(start).Round(time.Millisecond), best.Fractions, best.Outcome)
	case *greedy:
		best, sims := wfsched.GreedyFractions(sc, wfsched.Tab2Choices(sc.Workflow))
		fmt.Printf("greedy optimum (%d simulations): fractions=%v\n%v\n", sims, best.Fractions, best.Outcome)
	case *allCloud:
		fmt.Printf("all-cloud: %v\n", wfsched.Simulate(sc, wfsched.AllCloud))
	case *fractions != "":
		parts := strings.Split(*fractions, ",")
		fr := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fatalf("bad fraction %q", p)
			}
			fr[i] = v
		}
		out := wfsched.Simulate(sc, wfsched.LevelFractions(sc.Workflow, fr))
		fmt.Printf("fractions %v: %v\n", fr, out)
	default:
		fmt.Printf("all-local: %v\n", wfsched.Simulate(sc, wfsched.AllLocal))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wfsim: "+format+"\n", args...)
	os.Exit(1)
}
