// Command stripes runs the Warming-Stripes data-science workflow end
// to end: generate (or read) a DWD-like dataset, run the MapReduce
// analysis, validate the result, and render the Figure 6 image.
//
// Examples:
//
//	stripes -png stripes.png
//	stripes -layout station -start 1950 -end 2019 -missing 3 -exclude-suspect
//	stripes -dump-data datadir   # write the synthetic input files
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/climate"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/stripes"
)

func main() {
	var (
		layoutName = flag.String("layout", "month", "input layout: month|station|dwd")
		start      = flag.Int("start", 1881, "first year")
		end        = flag.Int("end", 2019, "last year")
		seed       = flag.Int64("seed", 42, "generator seed")
		missing    = flag.Int("missing", 0, "drop the last N months of the final year")
		mapTasks   = flag.Int("map-tasks", 8, "MapReduce map tasks")
		redTasks   = flag.Int("reduce-tasks", 4, "MapReduce reduce partitions")
		png        = flag.String("png", "", "write the warming-stripes PNG here")
		exclude    = flag.Bool("exclude-suspect", false, "blank years flagged by validation")
		dumpData   = flag.String("dump-data", "", "write the generated input files to this directory and exit")
		metrics    = flag.Bool("metrics", false, "print a metrics snapshot (JSON) after the run")
		traceFile  = flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
		obsListen  = flag.String("obs-listen", "", "serve live telemetry (/metrics /healthz /progress /events /debug/pprof/) on this address, e.g. :9090 (:0 picks a port)")
		faults     = flag.String("faults", "", "task-failure plan, e.g. seed=7,taskfail=0.2 (absorbed by MapReduce retry)")
	)
	flag.Parse()

	var plan *fault.Plan
	if *faults != "" {
		var err error
		if plan, err = fault.Parse(*faults); err != nil {
			fatalf("%v", err)
		}
	}

	d := climate.Generate(climate.Params{
		Seed: *seed, StartYear: *start, EndYear: *end, MissingFinalMonths: *missing,
	})

	var layout stripes.Layout
	var files map[string]string
	switch *layoutName {
	case "month":
		layout, files = stripes.MonthLayout, climate.MonthFiles(d)
	case "station":
		layout, files = stripes.StationLayout, climate.StationFiles(d)
	case "dwd":
		layout, files = stripes.DWDLayout, climate.DWDFiles(d)
	default:
		fatalf("unknown layout %q", *layoutName)
	}

	if *dumpData != "" {
		if err := os.MkdirAll(*dumpData, 0o755); err != nil {
			fatalf("%v", err)
		}
		for name, content := range files {
			path := filepath.Join(*dumpData, name+".csv")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fatalf("%v", err)
			}
		}
		fmt.Printf("wrote %d input files to %s\n", len(files), *dumpData)
		return
	}

	sink, flush := obs.Setup(*metrics, *traceFile)
	srv, err := obs.ServeTelemetry(&sink, *obsListen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	series, stats, err := stripes.ComputeSeries(layout, files, mapreduce.Config[string]{
		MapTasks: *mapTasks, ReduceTasks: *redTasks, Obs: sink, Faults: plan,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("MapReduce: %d map tasks over %d records, %d reduce groups, %d outputs\n",
		stats.MapTasks, stats.MapInputs, stats.ReduceGroups, stats.Outputs)
	if stats.TaskRetries > 0 {
		fmt.Printf("fault injection: %d task attempts failed and were retried\n", stats.TaskRetries)
	}

	v := stripes.Validate(series)
	if len(v.SuspectYears) > 0 {
		fmt.Printf("validation: suspect years %v (expected %d observations/year)\n",
			v.SuspectYears, v.ExpectedCount)
		if *exclude {
			series = series.Exclude(v.SuspectYears)
			fmt.Println("validation: suspect years excluded from the series")
		}
	} else {
		fmt.Println("validation: every year complete")
	}

	lo, hi := stripes.ColorScale(series)
	fmt.Printf("colorbar: %.2f .. %.2f °C (whole-span mean ± 1.5)\n", lo, hi)
	coldest, warmest := math.Inf(1), math.Inf(-1)
	coldYear, warmYear := 0, 0
	for y := *start; y <= series.EndYear(); y++ {
		m := series.Year(y)
		if math.IsNaN(m) {
			continue
		}
		if m < coldest {
			coldest, coldYear = m, y
		}
		if m > warmest {
			warmest, warmYear = m, y
		}
	}
	fmt.Printf("coldest year %d (%.2f °C), warmest year %d (%.2f °C)\n",
		coldYear, coldest, warmYear, warmest)

	if *png != "" {
		if err := img.SavePNG(*png, stripes.Render(series, 4, 120)); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *png)
	}
	if sink.Enabled() {
		if err := flush(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *traceFile != "" {
			fmt.Printf("wrote trace to %s\n", *traceFile)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stripes: "+format+"\n", args...)
	os.Exit(1)
}
