// Command peachy runs the reproduction's experiments — every figure
// and table of "Peachy Parallel Assignments (EduPar 2022)" — and
// prints their result tables. Image artifacts (Fig 1a/1b, Fig 4,
// Fig 6) are written as PNGs under -out.
//
// The flags build a job spec and run it through the same
// runners.Peachy adapter the peachyd job server executes; the CLI's
// extras — saving image artifacts, the markdown report, live
// per-experiment progress lines — ride on the adapter's hook fields.
//
// Usage:
//
//	peachy -list
//	peachy [-quick] [-out DIR] [E1 E5 E14 ...]   # default: all
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/job"
	"repro/internal/job/runners"
	"repro/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "run reduced workloads")
	out := flag.String("out", "artifacts", "directory for PNG artifacts")
	md := flag.String("md", "", "also write a markdown report to this file")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON) after the run")
	traceFile := flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
	obsListen := flag.String("obs-listen", "", "serve live telemetry (/metrics /healthz /progress /events /debug/pprof/) on this address, e.g. :9090 (:0 picks a port)")
	faults := flag.String("faults", "", "fault plan for fault-aware experiments, e.g. seed=9,crash=1@2,hostfail=0.1 (see internal/fault)")
	ckptDir := flag.String("checkpoint", "", "record completed experiments in this directory")
	resumeDir := flag.String("resume", "", "skip experiments already completed by a run checkpointed into this directory")
	flag.Parse()

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-4s %-22s %s\n", e.ID, e.Artifact, e.Title)
		}
		return
	}

	params := runners.PeachyParams{
		Experiments: flag.Args(), Quick: *quick, Faults: *faults,
	}
	raw, err := json.Marshal(params)
	if err != nil {
		fatalf("%v", err)
	}
	spec := job.Spec{APIVersion: job.APIVersion, Kind: "peachy", Tenant: "cli", Params: raw}
	adapter := &runners.Peachy{}
	if err := adapter.Validate(spec); err != nil {
		fatalf("%v", err)
	}

	sink, flush := obs.Setup(*metrics, *traceFile)
	srv, err := obs.ServeTelemetry(&sink, *obsListen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	ck, err := ckpt.ForCLI("peachy", *ckptDir, *resumeDir, 1, sink)
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}

	var report strings.Builder
	if *md != "" {
		report.WriteString("# Peachy Parallel Assignments — experiment report\n\n")
	}
	failed := 0
	var started time.Time
	adapter.OnStart = func(e core.Experiment) {
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Artifact, e.Title)
		started = time.Now()
	}
	adapter.OnSkip = func(e core.Experiment) {
		fmt.Printf("=== %s (%s): already completed, skipped (resume)\n", e.ID, e.Artifact)
	}
	adapter.OnResult = func(e core.Experiment, res *core.Result) {
		fmt.Print(res.Render())
		for name, image := range res.Images {
			path := filepath.Join(*out, name)
			if err := img.SavePNG(path, image); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: saving %s: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
		for name, svg := range res.SVGs {
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: saving %s: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(started).Round(time.Millisecond))
		if *md != "" {
			report.WriteString(e.MarkdownHeader())
			report.WriteByte('\n')
			report.WriteString(res.Markdown())
			report.WriteByte('\n')
		}
	}

	prog := sink.Progress
	if prog == nil {
		prog = obs.NewProgress(nil)
	}
	ctx := job.WithEnv(context.Background(), job.Env{Obs: sink, Ckpt: ck})
	res, err := adapter.Run(ctx, spec, prog)
	if err != nil {
		fatalf("%v", err)
	}
	var po runners.PeachyOutput
	if err := json.Unmarshal(res.Output, &po); err != nil {
		fatalf("%v", err)
	}
	for _, e := range po.Experiments {
		if e.Error != "" {
			fmt.Fprintf(os.Stderr, "peachy: %s failed: %s\n", e.ID, e.Error)
			failed++
		}
	}

	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "peachy: writing report: %v\n", err)
			failed++
		} else {
			fmt.Printf("wrote report to %s\n", *md)
		}
	}
	if sink.Enabled() {
		if err := flush(os.Stdout); err != nil {
			fatalf("%v", err)
		} else if *traceFile != "" {
			fmt.Fprintf(os.Stderr, "wrote trace to %s\n", *traceFile)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peachy: "+format+"\n", args...)
	os.Exit(1)
}
