// Command peachy runs the reproduction's experiments — every figure
// and table of "Peachy Parallel Assignments (EduPar 2022)" — and
// prints their result tables. Image artifacts (Fig 1a/1b, Fig 4,
// Fig 6) are written as PNGs under -out.
//
// Usage:
//
//	peachy -list
//	peachy [-quick] [-out DIR] [E1 E5 E14 ...]   # default: all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/obs"
)

// peachyPayload tags the completed-experiment set inside the ckpt
// frame: a killed multi-experiment run resumed with -resume skips the
// experiments that already finished (their artifacts are on disk).
const peachyPayload uint32 = 5

func encodeDone(done []string) []byte {
	var e ckpt.Enc
	e.U32(peachyPayload)
	e.U64(uint64(len(done)))
	for _, id := range done {
		e.Str(id)
	}
	return e.Bytes()
}

func decodeDone(payload []byte, epoch uint64) ([]string, error) {
	dec := ckpt.NewDec(payload)
	if tag := dec.U32(); tag != peachyPayload {
		return nil, fmt.Errorf("snapshot has payload tag %d, want %d", tag, peachyPayload)
	}
	n := dec.U64()
	ids := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ids = append(ids, dec.Str())
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if n != epoch {
		return nil, fmt.Errorf("snapshot epoch %d holds %d experiments", epoch, n)
	}
	return ids, nil
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "run reduced workloads")
	out := flag.String("out", "artifacts", "directory for PNG artifacts")
	md := flag.String("md", "", "also write a markdown report to this file")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON) after the run")
	traceFile := flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
	obsListen := flag.String("obs-listen", "", "serve live telemetry (/metrics /healthz /progress /events /debug/pprof/) on this address, e.g. :9090 (:0 picks a port)")
	faults := flag.String("faults", "", "fault plan for fault-aware experiments, e.g. seed=9,crash=1@2,hostfail=0.1 (see internal/fault)")
	ckptDir := flag.String("checkpoint", "", "record completed experiments in this directory")
	resumeDir := flag.String("resume", "", "skip experiments already completed by a run checkpointed into this directory")
	flag.Parse()

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-4s %-22s %s\n", e.ID, e.Artifact, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	}
	sink, flush := obs.Setup(*metrics, *traceFile)
	srv, err := obs.ServeTelemetry(&sink, *obsListen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	ck, err := ckpt.ForCLI("peachy", *ckptDir, *resumeDir, 1, sink)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
		os.Exit(1)
	}
	var done []string
	completed := map[string]bool{}
	if ck != nil {
		if epoch, payload, ok, err := ck.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
			os.Exit(1)
		} else if ok {
			if done, err = decodeDone(payload, epoch); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
				os.Exit(1)
			}
			for _, id := range done {
				completed[id] = true
			}
		}
	}
	cfg := core.Config{Quick: *quick, OutDir: *out, Obs: sink}
	if *faults != "" {
		plan, err := fault.Parse(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
			os.Exit(1)
		}
		cfg.Faults = plan
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
		os.Exit(1)
	}

	var report strings.Builder
	if *md != "" {
		report.WriteString("# Peachy Parallel Assignments — experiment report\n\n")
	}
	failed := 0
	for _, id := range ids {
		e, err := core.Lookup(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
			failed++
			continue
		}
		if completed[e.ID] {
			fmt.Printf("=== %s (%s): already completed, skipped (resume)\n", e.ID, e.Artifact)
			continue
		}
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Artifact, e.Title)
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(res.Render())
		for name, image := range res.Images {
			path := filepath.Join(*out, name)
			if err := img.SavePNG(path, image); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: saving %s: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
		for name, svg := range res.SVGs {
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: saving %s: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *md != "" {
			report.WriteString(e.MarkdownHeader())
			report.WriteByte('\n')
			report.WriteString(res.Markdown())
			report.WriteByte('\n')
		}
		if ck != nil {
			done = append(done, e.ID)
			completed[e.ID] = true
			if err := ck.Save(uint64(len(done)), encodeDone(done)); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: checkpoint: %v\n", err)
				failed++
			}
		}
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "peachy: writing report: %v\n", err)
			failed++
		} else {
			fmt.Printf("wrote report to %s\n", *md)
		}
	}
	if sink.Enabled() {
		if err := flush(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
			failed++
		} else if *traceFile != "" {
			fmt.Fprintf(os.Stderr, "wrote trace to %s\n", *traceFile)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
