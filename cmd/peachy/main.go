// Command peachy runs the reproduction's experiments — every figure
// and table of "Peachy Parallel Assignments (EduPar 2022)" — and
// prints their result tables. Image artifacts (Fig 1a/1b, Fig 4,
// Fig 6) are written as PNGs under -out.
//
// Usage:
//
//	peachy -list
//	peachy [-quick] [-out DIR] [E1 E5 E14 ...]   # default: all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "run reduced workloads")
	out := flag.String("out", "artifacts", "directory for PNG artifacts")
	md := flag.String("md", "", "also write a markdown report to this file")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON) after the run")
	traceFile := flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
	faults := flag.String("faults", "", "fault plan for fault-aware experiments, e.g. seed=9,crash=1@2,hostfail=0.1 (see internal/fault)")
	flag.Parse()

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-4s %-22s %s\n", e.ID, e.Artifact, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	}
	sink, flush := obs.Setup(*metrics, *traceFile)
	cfg := core.Config{Quick: *quick, OutDir: *out, Obs: sink}
	if *faults != "" {
		plan, err := fault.Parse(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
			os.Exit(1)
		}
		cfg.Faults = plan
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
		os.Exit(1)
	}

	var report strings.Builder
	if *md != "" {
		report.WriteString("# Peachy Parallel Assignments — experiment report\n\n")
	}
	failed := 0
	for _, id := range ids {
		e, err := core.Lookup(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
			failed++
			continue
		}
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Artifact, e.Title)
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(res.Render())
		for name, image := range res.Images {
			path := filepath.Join(*out, name)
			if err := img.SavePNG(path, image); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: saving %s: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
		for name, svg := range res.SVGs {
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "peachy: saving %s: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *md != "" {
			report.WriteString(e.MarkdownHeader())
			report.WriteByte('\n')
			report.WriteString(res.Markdown())
			report.WriteByte('\n')
		}
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "peachy: writing report: %v\n", err)
			failed++
		} else {
			fmt.Printf("wrote report to %s\n", *md)
		}
	}
	if sink.Enabled() {
		if err := flush(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "peachy: %v\n", err)
			failed++
		} else if *traceFile != "" {
			fmt.Fprintf(os.Stderr, "wrote trace to %s\n", *traceFile)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
