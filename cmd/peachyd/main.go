// Command peachyd is the long-lived job service: the repo's compute
// substrates (sandpile, mapreduce, wfsim) behind one HTTP/JSON API.
// Clients POST a versioned job spec, an admission controller applies
// per-tenant quotas and priority classes with explicit 429
// backpressure, and a shared executor fleet runs admitted jobs. With
// -state the job table is journalled and jobs checkpoint, so a killed
// server resumes queued and running work on restart.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a spec (202 + job view)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status (result inline when done)
//	GET    /v1/jobs/{id}/result finished job's result document
//	GET    /v1/jobs/{id}/events live progress (server-sent events)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness
//
// Examples:
//
//	peachyd -listen :8080 -obs-listen :9090 -state /var/lib/peachyd
//	curl -d '{"kind":"sandpile","tenant":"alice"}' localhost:8080/v1/jobs
//	peachyd -oneshot spec.json   # run one spec inline, print its result
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/job"
	"repro/internal/job/runners"
	"repro/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "job API listen address (port 0 picks one)")
		obsListen   = flag.String("obs-listen", "", "serve live telemetry (/metrics /progress /events) on this address")
		executors   = flag.Int("executors", 0, "executor fleet size (0 = GOMAXPROCS, negative = queue-only: admit and journal but never run)")
		stateDir    = flag.String("state", "", "durable state directory (job journal + per-job checkpoints); empty = in-memory only")
		queueDepth  = flag.Int("queue-depth", 256, "max queued jobs per priority class")
		tenantQuota = flag.Int("tenant-quota", 32, "max queued+running jobs per tenant")
		ckptEvery   = flag.Int64("checkpoint-every", 25, "default snapshot cadence for jobs that don't set one")
		drain       = flag.Duration("drain", 5*time.Second, "shutdown drain timeout")
		oneshot     = flag.String("oneshot", "", "run the job spec in this file inline and print its result JSON")
	)
	flag.Parse()

	if *oneshot != "" {
		if err := runOneshot(*oneshot); err != nil {
			fatalf("%v", err)
		}
		return
	}

	sink := obs.Sink{Metrics: obs.NewRegistry(), Log: obs.NewLogger()}
	opts := append(runners.Register(),
		job.WithExecutors(*executors),
		job.WithQueueDepth(*queueDepth),
		job.WithTenantQuota(*tenantQuota),
		job.WithDefaultCheckpointEvery(*ckptEvery),
		job.WithManagerObs(sink),
	)
	if *stateDir != "" {
		opts = append(opts, job.WithStateDir(*stateDir))
	}
	m, err := job.NewManager(opts...)
	if err != nil {
		fatalf("%v", err)
	}
	svc, err := job.StartService(job.ServiceConfig{
		Manager:       m,
		APIAddr:       *listen,
		TelemetryAddr: *obsListen,
		Obs:           &sink,
		DrainTimeout:  *drain,
	})
	if err != nil {
		fatalf("%v", err)
	}
	// The smoke scripts parse this line to find the bound port.
	fmt.Printf("peachyd: listening on %s\n", svc.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("peachyd: shutting down")
	if err := svc.Close(); err != nil {
		fatalf("shutdown: %v", err)
	}
}

// runOneshot executes one spec inline — no server, no queue — and
// prints exactly the Result JSON the running service would serve at
// /v1/jobs/{id}/result. The smoke script diffs the two byte streams.
func runOneshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec job.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	runner, ok := runners.Defaults()[spec.Kind]
	if !ok {
		return fmt.Errorf("%w: %q", job.ErrUnknownKind, spec.Kind)
	}
	if err := runner.Validate(spec); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := runner.Run(ctx, spec, obs.NewProgress(nil))
	if err != nil {
		return err
	}
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peachyd: "+format+"\n", args...)
	os.Exit(1)
}
